//! Cannon's distributed dense matrix multiplication — the paper's
//! "simultaneous communication" application (§4, §5.1).
//!
//! `P` workers are arranged in a `√P × √P` grid.  Each holds one block of
//! `A`, `B` and `C`; after an initial alignment, the algorithm performs `√P`
//! rounds of local multiply-accumulate followed by a simultaneous rotation of
//! the `A` blocks left and the `B` blocks up, implemented with
//! `sendrecv_replace` in both the DCGN and the GAS+MPI variants.

use std::sync::Arc;
use std::time::Duration;

use dcgn::{CostModel, DcgnConfig, DcgnError, NodeConfig, Runtime};
use dcgn_dpm::{Device, DeviceConfig};
use dcgn_rmpi::{MpiWorld, RankPlacement};
use dcgn_simtime::Stopwatch;
use parking_lot::Mutex;

/// Deterministic test matrices: `A[i][j]` and `B[i][j]` as simple functions
/// of the indices, so every worker can generate its own block and the master
/// can verify the product against a sequential reference.
pub fn gen_a(i: usize, j: usize) -> f32 {
    ((i * 7 + j * 3) % 13) as f32 / 13.0
}

/// See [`gen_a`].
pub fn gen_b(i: usize, j: usize) -> f32 {
    ((i * 5 + j * 11) % 17) as f32 / 17.0 - 0.5
}

/// Row-major sequential reference product of the generated matrices.
pub fn matmul_reference(n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let a = gen_a(i, k);
            for j in 0..n {
                c[i * n + j] += a * gen_b(k, j);
            }
        }
    }
    c
}

/// Multiply-accumulate of two `bs × bs` blocks: `c += a × b`.
pub fn block_multiply_accumulate(c: &mut [f32], a: &[f32], b: &[f32], bs: usize) {
    for i in 0..bs {
        for k in 0..bs {
            let av = a[i * bs + k];
            for j in 0..bs {
                c[i * bs + j] += av * b[k * bs + j];
            }
        }
    }
}

/// Generate the block of `A` (after the initial Cannon alignment) owned by
/// grid position `(row, col)` on a `q × q` grid with block size `bs`.
fn aligned_a_block(row: usize, col: usize, q: usize, bs: usize) -> Vec<f32> {
    let src_col = (col + row) % q;
    let mut block = Vec::with_capacity(bs * bs);
    for i in 0..bs {
        for j in 0..bs {
            block.push(gen_a(row * bs + i, src_col * bs + j));
        }
    }
    block
}

/// Generate the block of `B` (after the initial Cannon alignment) owned by
/// grid position `(row, col)`.
fn aligned_b_block(row: usize, col: usize, q: usize, bs: usize) -> Vec<f32> {
    let src_row = (row + col) % q;
    let mut block = Vec::with_capacity(bs * bs);
    for i in 0..bs {
        for j in 0..bs {
            block.push(gen_b(src_row * bs + i, col * bs + j));
        }
    }
    block
}

fn f32s_to_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_f32s(b: &[u8]) -> Vec<f32> {
    b.chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Result of a distributed Cannon run.
#[derive(Debug, Clone)]
pub struct CannonRun {
    /// The full `n × n` product matrix assembled at the master.
    pub c: Vec<f32>,
    /// Wall-clock time of the distributed run.
    pub elapsed: Duration,
    /// Number of workers (`P`, a perfect square).
    pub workers: usize,
    /// Matrix dimension.
    pub n: usize,
}

impl CannonRun {
    /// Maximum absolute difference to the sequential reference product.
    pub fn max_error(&self) -> f32 {
        let reference = matmul_reference(self.n);
        self.c
            .iter()
            .zip(&reference)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }
}

fn grid_side(p: usize) -> usize {
    let q = (p as f64).sqrt().round() as usize;
    assert_eq!(
        q * q,
        p,
        "Cannon needs a perfect-square worker count, got {p}"
    );
    q
}

/// Cannon's algorithm with DCGN: rank 0 is a CPU master collecting the
/// result; ranks `1..=P` are GPU slots holding the blocks in device memory
/// and rotating them with device-side `sendrecv_replace`.
///
/// The grid topology uses genuine row/column communicators (the
/// `MPI_Comm_split` idiom): every worker splits the world twice — by row
/// with the column as key, and by column with the row as key — and reads its
/// rotation neighbours out of the resulting member tables.  The master joins
/// both splits with a sentinel color, landing in singleton groups.
pub fn run_dcgn_gpu(
    n: usize,
    p: usize,
    num_nodes: usize,
    cost: CostModel,
) -> Result<CannonRun, DcgnError> {
    let q = grid_side(p);
    assert!(
        n.is_multiple_of(q),
        "matrix dimension {n} must be divisible by {q}"
    );
    let bs = n / q;
    let block_bytes = bs * bs * 4;

    // Distribute P GPU slots over the nodes: every node gets one GPU with
    // ceil(P / nodes) slots (the last may have fewer via rank count).
    assert!(
        p.is_multiple_of(num_nodes),
        "worker count {p} must be divisible by node count {num_nodes}"
    );
    let slots_per_node = p / num_nodes;
    let mut nodes = Vec::new();
    for node in 0..num_nodes {
        let cpus = if node == 0 { 1 } else { 0 };
        nodes.push(
            NodeConfig::new(cpus, 1, slots_per_node).with_device(
                DeviceConfig::default()
                    .with_multiprocessors(slots_per_node.max(2))
                    .with_memory_bytes((4 * block_bytes * slots_per_node + (1 << 20)).max(8 << 20)),
            ),
        );
    }
    let config = DcgnConfig::heterogeneous(nodes).with_cost(cost);
    let runtime = Runtime::new(config)?;

    let result: Arc<Mutex<Option<Vec<f32>>>> = Arc::new(Mutex::new(None));
    let result_master = Arc::clone(&result);

    let sw = Stopwatch::start();
    runtime.launch_with_gpu_setup(
        // Master: collect the C blocks and assemble the full matrix.
        move |ctx| {
            if ctx.rank() != 0 {
                return;
            }
            // The splits are collective over the world, so the master
            // participates too; its sentinel color gives singleton groups.
            let row_comm = ctx.comm_split(u32::MAX, 0).expect("master row split");
            let col_comm = ctx.comm_split(u32::MAX, 0).expect("master col split");
            assert_eq!((row_comm.size(), col_comm.size()), (1, 1));
            let mut c = vec![0.0f32; n * n];
            for _ in 0..p {
                let (msg, _) = ctx.recv_any().expect("master recv C block");
                let worker = u32::from_le_bytes(msg[0..4].try_into().unwrap()) as usize;
                let block = bytes_to_f32s(&msg[4..]);
                let (row, col) = ((worker - 1) / q, (worker - 1) % q);
                for i in 0..bs {
                    for j in 0..bs {
                        c[(row * bs + i) * n + col * bs + j] = block[i * bs + j];
                    }
                }
            }
            *result_master.lock() = Some(c);
        },
        // Per-GPU setup: stage the aligned A and B blocks, a zero C block
        // and the two communicator tables for every slot on this device.
        move |setup| {
            let dev = setup.device();
            let tbl_len = 16 + 4 * setup.size();
            let mut per_slot = Vec::new();
            for slot in 0..setup.slots() {
                let worker = setup.slot_rank(slot) - 1;
                let (row, col) = (worker / q, worker % q);
                let a = dev.malloc(block_bytes).expect("A block");
                let b = dev.malloc(block_bytes).expect("B block");
                let c = dev.malloc(block_bytes + 4).expect("C block + header");
                let row_tbl = dev.malloc(tbl_len).expect("row comm table");
                let col_tbl = dev.malloc(tbl_len).expect("column comm table");
                dev.memcpy_htod(a, &f32s_to_bytes(&aligned_a_block(row, col, q, bs)))
                    .expect("stage A");
                dev.memcpy_htod(b, &f32s_to_bytes(&aligned_b_block(row, col, q, bs)))
                    .expect("stage B");
                dev.memcpy_htod(c, &vec![0u8; block_bytes + 4])
                    .expect("zero C");
                per_slot.push((a, b, c, row_tbl, col_tbl));
            }
            per_slot
        },
        // Worker kernel: √P rounds of multiply-accumulate + rotation.
        move |ctx, buffers| {
            let slot = ctx.slot_for_block();
            if ctx.block().block_id() >= ctx.slots() {
                return;
            }
            let me = ctx.rank(slot);
            let worker = me - 1;
            let (row, col) = (worker / q, worker % q);
            let (a_ptr, b_ptr, c_ptr, row_tbl, col_tbl) = buffers[slot];
            let block = ctx.block();

            // Row/column communicators: split by row keyed on column (so
            // the row comm's sub-rank IS the column) and vice versa.
            let tbl_len = 16 + 4 * ctx.size();
            let row_comm = ctx.split(slot, row as u32, col as u32, row_tbl, tbl_len);
            let col_comm = ctx.split(slot, col as u32, row as u32, col_tbl, tbl_len);
            assert_eq!((row_comm.rank, row_comm.size), (col, q));
            assert_eq!((col_comm.rank, col_comm.size), (row, q));
            // Align each row before the rounds start: q disjoint
            // communicators synchronising concurrently.
            ctx.barrier_in(slot, &row_comm);

            // Neighbours for the rotation come from the member tables: A
            // goes left along the row, B up along the column (wraparound).
            let left = ctx.comm_member(&row_comm, (col + q - 1) % q);
            let right = ctx.comm_member(&row_comm, (col + 1) % q);
            let up = ctx.comm_member(&col_comm, (row + q - 1) % q);
            let down = ctx.comm_member(&col_comm, (row + 1) % q);

            let mut c_acc = vec![0.0f32; bs * bs];
            for step in 0..q {
                let a = block.read_f32_slice(a_ptr, bs * bs);
                let b = block.read_f32_slice(b_ptr, bs * bs);
                block_multiply_accumulate(&mut c_acc, &a, &b, bs);
                if step + 1 < q {
                    // Simultaneous rotation; sendrecv_replace keeps the
                    // symmetric exchange deadlock-free.
                    ctx.sendrecv_replace(slot, left, right, a_ptr, block_bytes);
                    ctx.sendrecv_replace(slot, up, down, b_ptr, block_bytes);
                }
            }
            // Ship the finished block to the master: [worker u32][block f32s].
            let mut msg = Vec::with_capacity(4 + block_bytes);
            msg.extend_from_slice(&(me as u32).to_le_bytes());
            msg.extend_from_slice(&f32s_to_bytes(&c_acc));
            block.write(c_ptr, &msg);
            ctx.send(slot, 0, c_ptr, msg.len());
        },
        |_setup, _buffers| {},
    )?;
    let elapsed = sw.elapsed();
    let c = result
        .lock()
        .take()
        .ok_or_else(|| DcgnError::Internal("master produced no matrix".into()))?;
    Ok(CannonRun {
        c,
        elapsed,
        workers: p,
        n,
    })
}

/// GAS+MPI Cannon baseline: each worker owns a device, launches one
/// multiply kernel per round, and the host performs the rotations with MPI
/// `sendrecv_replace` between kernel invocations.
pub fn run_gas(n: usize, p: usize, num_nodes: usize, cost: CostModel) -> CannonRun {
    let q = grid_side(p);
    assert!(n.is_multiple_of(q));
    let bs = n / q;
    let block_bytes = bs * bs * 4;
    // Rank 0 is the master, ranks 1..=p are workers.
    let placement = RankPlacement::round_robin(num_nodes, p + 1);
    let sw = Stopwatch::start();
    let results = MpiWorld::run(&placement, cost, move |mut comm| {
        if comm.rank() == 0 {
            let mut c = vec![0.0f32; n * n];
            for _ in 0..p {
                let (msg, status) = comm.recv(None, Some(7)).unwrap();
                let worker = status.source - 1;
                let block = bytes_to_f32s(msg.as_slice());
                let (row, col) = (worker / q, worker % q);
                for i in 0..bs {
                    for j in 0..bs {
                        c[(row * bs + i) * n + col * bs + j] = block[i * bs + j];
                    }
                }
            }
            Some(c)
        } else {
            let worker = comm.rank() - 1;
            let (row, col) = (worker / q, worker % q);
            let left = 1 + row * q + (col + q - 1) % q;
            let right = 1 + row * q + (col + 1) % q;
            let up = 1 + ((row + q - 1) % q) * q + col;
            let down = 1 + ((row + 1) % q) * q + col;

            // GPU-as-slave: blocks live on the device; the host pulls them
            // back for every communication step.
            let device = Device::new(
                comm.rank(),
                DeviceConfig::default().with_memory_bytes((4 * block_bytes).max(8 << 20)),
                cost,
            );
            let a_ptr = device.malloc(block_bytes).unwrap();
            let b_ptr = device.malloc(block_bytes).unwrap();
            device
                .memcpy_htod(a_ptr, &f32s_to_bytes(&aligned_a_block(row, col, q, bs)))
                .unwrap();
            device
                .memcpy_htod(b_ptr, &f32s_to_bytes(&aligned_b_block(row, col, q, bs)))
                .unwrap();
            let c_acc = Arc::new(Mutex::new(vec![0.0f32; bs * bs]));
            for step in 0..q {
                let acc = Arc::clone(&c_acc);
                device
                    .launch_sync(1, 32, move |block| {
                        let a = block.read_f32_slice(a_ptr, bs * bs);
                        let b = block.read_f32_slice(b_ptr, bs * bs);
                        block_multiply_accumulate(&mut acc.lock(), &a, &b, bs);
                    })
                    .unwrap();
                if step + 1 < q {
                    // Host-mediated rotation: device → host → MPI → device.
                    let mut a_host = device.memcpy_dtoh_vec(a_ptr, block_bytes).unwrap();
                    comm.sendrecv_replace(&mut a_host, left, 1, Some(right), Some(1))
                        .unwrap();
                    device.memcpy_htod(a_ptr, &a_host).unwrap();
                    let mut b_host = device.memcpy_dtoh_vec(b_ptr, block_bytes).unwrap();
                    comm.sendrecv_replace(&mut b_host, up, 2, Some(down), Some(2))
                        .unwrap();
                    device.memcpy_htod(b_ptr, &b_host).unwrap();
                }
            }
            let final_c = c_acc.lock().clone();
            comm.send(0, 7, &f32s_to_bytes(&final_c)).unwrap();
            None
        }
    });
    let elapsed = sw.elapsed();
    let c = results.into_iter().flatten().next().expect("master result");
    CannonRun {
        c,
        elapsed,
        workers: p,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matmul_is_consistent() {
        // (A·B) computed blockwise equals the reference for a small case.
        let n = 8;
        let reference = matmul_reference(n);
        // Recompute with block_multiply_accumulate over 2x2 blocks of size 4.
        let q = 2;
        let bs = n / q;
        let mut c = vec![0.0f32; n * n];
        for brow in 0..q {
            for bcol in 0..q {
                let mut acc = vec![0.0f32; bs * bs];
                for k in 0..q {
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    for i in 0..bs {
                        for j in 0..bs {
                            a.push(gen_a(brow * bs + i, k * bs + j));
                            b.push(gen_b(k * bs + i, bcol * bs + j));
                        }
                    }
                    block_multiply_accumulate(&mut acc, &a, &b, bs);
                }
                for i in 0..bs {
                    for j in 0..bs {
                        c[(brow * bs + i) * n + bcol * bs + j] = acc[i * bs + j];
                    }
                }
            }
        }
        for (x, y) in c.iter().zip(&reference) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn aligned_blocks_cover_the_matrices() {
        // The union of aligned blocks is a permutation of the original
        // matrix entries (alignment only shifts whole blocks).
        let q = 2;
        let bs = 3;
        let mut seen_a = Vec::new();
        for row in 0..q {
            for col in 0..q {
                seen_a.extend(aligned_a_block(row, col, q, bs));
            }
        }
        let mut all_a = Vec::new();
        for i in 0..q * bs {
            for j in 0..q * bs {
                all_a.push(gen_a(i, j));
            }
        }
        seen_a.sort_by(f32::total_cmp);
        all_a.sort_by(f32::total_cmp);
        assert_eq!(seen_a, all_a);
    }

    #[test]
    fn dcgn_cannon_matches_reference_2x2() {
        let run = run_dcgn_gpu(16, 4, 1, CostModel::zero()).unwrap();
        assert_eq!(run.workers, 4);
        assert!(run.max_error() < 1e-4, "max error {}", run.max_error());
    }

    #[test]
    fn dcgn_cannon_multi_node() {
        let run = run_dcgn_gpu(16, 4, 2, CostModel::zero()).unwrap();
        assert!(run.max_error() < 1e-4);
    }

    #[test]
    fn gas_cannon_matches_reference() {
        let run = run_gas(16, 4, 2, CostModel::zero());
        assert!(run.max_error() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "perfect-square")]
    fn non_square_worker_count_is_rejected() {
        let _ = grid_side(3);
    }
}
