//! Brute-force N-body simulation — the paper's "one-to-all" application
//! (§4, §5.1).
//!
//! `P` targets each own `N/P` bodies.  Every time step each target
//! accumulates the gravitational force of all `N` bodies on its share,
//! integrates, and then broadcasts its updated bodies to every other target.
//! The DCGN variant runs the force computation in GPU kernels and issues the
//! broadcasts from the device; the GAS variant launches one kernel per step
//! and lets the host broadcast between launches.

use std::sync::Arc;
use std::time::Duration;

use dcgn::{CostModel, DcgnConfig, DcgnError, NodeConfig, Runtime};
use dcgn_dpm::{Device, DeviceConfig};
use dcgn_rmpi::{MpiWorld, RankPlacement};
use dcgn_simtime::Stopwatch;
use parking_lot::Mutex;

/// State of one body: position, velocity and mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f32; 3],
    /// Velocity.
    pub vel: [f32; 3],
    /// Mass.
    pub mass: f32,
}

/// Bytes used to serialise one body (7 × f32).
pub const BODY_BYTES: usize = 28;

/// Softening factor keeping the force finite at small separations.
pub const SOFTENING: f32 = 1e-2;

/// Integration time step.
pub const DT: f32 = 1e-3;

/// Deterministic initial condition: `n` bodies on a spiral with varying mass.
pub fn initial_bodies(n: usize) -> Vec<Body> {
    (0..n)
        .map(|i| {
            let t = i as f32 / n as f32;
            let angle = t * 12.0;
            Body {
                pos: [
                    angle.cos() * (0.1 + t),
                    angle.sin() * (0.1 + t),
                    0.2 * t - 0.1,
                ],
                vel: [-angle.sin() * 0.05, angle.cos() * 0.05, 0.0],
                mass: 0.5 + t,
            }
        })
        .collect()
}

/// Serialise bodies to little-endian bytes.
pub fn bodies_to_bytes(bodies: &[Body]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bodies.len() * BODY_BYTES);
    for b in bodies {
        for v in b
            .pos
            .iter()
            .chain(b.vel.iter())
            .chain(std::iter::once(&b.mass))
        {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Deserialise bodies from little-endian bytes.
pub fn bytes_to_bodies(bytes: &[u8]) -> Vec<Body> {
    assert!(bytes.len().is_multiple_of(BODY_BYTES));
    bytes
        .chunks_exact(BODY_BYTES)
        .map(|c| {
            let f = |i: usize| f32::from_le_bytes(c[i * 4..i * 4 + 4].try_into().unwrap());
            Body {
                pos: [f(0), f(1), f(2)],
                vel: [f(3), f(4), f(5)],
                mass: f(6),
            }
        })
        .collect()
}

/// Advance the bodies in `range` by one step under the gravity of `all`.
pub fn step_range(all: &[Body], range: std::ops::Range<usize>) -> Vec<Body> {
    let mut out = Vec::with_capacity(range.len());
    for i in range {
        let me = all[i];
        let mut acc = [0.0f32; 3];
        for other in all {
            let dx = other.pos[0] - me.pos[0];
            let dy = other.pos[1] - me.pos[1];
            let dz = other.pos[2] - me.pos[2];
            let dist2 = dx * dx + dy * dy + dz * dz + SOFTENING;
            let inv = 1.0 / (dist2 * dist2.sqrt());
            let s = other.mass * inv;
            acc[0] += dx * s;
            acc[1] += dy * s;
            acc[2] += dz * s;
        }
        let mut b = me;
        for (k, a) in acc.iter().enumerate() {
            b.vel[k] += a * DT;
            b.pos[k] += b.vel[k] * DT;
        }
        out.push(b);
    }
    out
}

/// Sequential reference simulation.
pub fn simulate_reference(n: usize, steps: usize) -> Vec<Body> {
    let mut bodies = initial_bodies(n);
    for _ in 0..steps {
        bodies = step_range(&bodies, 0..bodies.len());
    }
    bodies
}

/// Result of a distributed N-body run.
#[derive(Debug, Clone)]
pub struct NbodyRun {
    /// Final body states.
    pub bodies: Vec<Body>,
    /// Wall-clock time of the distributed run.
    pub elapsed: Duration,
    /// Number of workers.
    pub workers: usize,
}

impl NbodyRun {
    /// Maximum absolute position error versus the sequential reference.
    pub fn max_position_error(&self, steps: usize) -> f32 {
        let reference = simulate_reference(self.bodies.len(), steps);
        self.bodies
            .iter()
            .zip(&reference)
            .map(|(a, b)| {
                (0..3)
                    .map(|k| (a.pos[k] - b.pos[k]).abs())
                    .fold(0.0f32, f32::max)
            })
            .fold(0.0, f32::max)
    }
}

fn share(n: usize, p: usize, worker: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(p);
    let start = (worker * per).min(n);
    let end = ((worker + 1) * per).min(n);
    start..end
}

/// DCGN N-body: every GPU slot owns a share of the bodies; each step it
/// integrates its share on the device and the shares are exchanged with a
/// sequence of broadcasts sourced from the device (§4 "One-to-All").
pub fn run_dcgn_gpu(
    n: usize,
    p: usize,
    num_nodes: usize,
    steps: usize,
    cost: CostModel,
) -> Result<NbodyRun, DcgnError> {
    assert!(
        p.is_multiple_of(num_nodes),
        "workers must divide evenly over nodes"
    );
    let slots_per_node = p / num_nodes;
    let all_bytes = n * BODY_BYTES;
    let mut nodes = Vec::new();
    for node in 0..num_nodes {
        let cpus = if node == 0 { 1 } else { 0 };
        nodes.push(
            NodeConfig::new(cpus, 1, slots_per_node).with_device(
                DeviceConfig::default()
                    .with_multiprocessors(slots_per_node.max(2))
                    .with_memory_bytes((2 * all_bytes * slots_per_node + (1 << 20)).max(8 << 20)),
            ),
        );
    }
    let config = DcgnConfig::heterogeneous(nodes).with_cost(cost);
    let runtime = Runtime::new(config)?;

    let result: Arc<Mutex<Option<Vec<Body>>>> = Arc::new(Mutex::new(None));
    let result_master = Arc::clone(&result);
    let initial = Arc::new(initial_bodies(n));

    let sw = Stopwatch::start();
    runtime.launch_with_gpu_setup(
        // Master (CPU rank 0): participates in every broadcast so it always
        // holds the current state; stores the final result.
        move |ctx| {
            if ctx.rank() != 0 {
                return;
            }
            let mut bodies = (*initial).clone();
            for _ in 0..steps {
                for worker in 0..p {
                    let root = worker + 1;
                    let mut buf = Vec::new();
                    ctx.broadcast(root, &mut buf).expect("master broadcast");
                    let updated = bytes_to_bodies(&buf);
                    let range = share(n, p, worker);
                    bodies[range].copy_from_slice(&updated);
                }
            }
            *result_master.lock() = Some(bodies);
        },
        // Per-GPU setup: stage the full body array per slot.
        move |setup| {
            let dev = setup.device();
            let bodies = initial_bodies(n);
            let mut per_slot = Vec::new();
            for _ in 0..setup.slots() {
                let all = dev.malloc(all_bytes).expect("bodies buffer");
                dev.memcpy_htod(all, &bodies_to_bytes(&bodies))
                    .expect("stage bodies");
                per_slot.push(all);
            }
            per_slot
        },
        // Worker kernel.
        move |ctx, buffers| {
            let slot = ctx.slot_for_block();
            if ctx.block().block_id() >= ctx.slots() {
                return;
            }
            let me = ctx.rank(slot);
            let worker = me - 1;
            let my_range = share(n, p, worker);
            let all_ptr = buffers[slot];
            let block = ctx.block();
            for _ in 0..steps {
                // Integrate this worker's share against all bodies.
                let all_bytes_host = block.read_vec(all_ptr, all_bytes);
                let all = bytes_to_bodies(&all_bytes_host);
                let updated = step_range(&all, my_range.clone());
                let my_ptr = all_ptr.add(my_range.start * BODY_BYTES);
                block.write(my_ptr, &bodies_to_bytes(&updated));
                // Exchange shares: each worker broadcasts its slice in turn.
                for src_worker in 0..p {
                    let root = src_worker + 1;
                    let range = share(n, p, src_worker);
                    let ptr = all_ptr.add(range.start * BODY_BYTES);
                    ctx.broadcast(slot, root, ptr, range.len() * BODY_BYTES);
                }
            }
        },
        |_setup, _buffers| {},
    )?;
    let elapsed = sw.elapsed();
    let bodies = result
        .lock()
        .take()
        .ok_or_else(|| DcgnError::Internal("master produced no bodies".into()))?;
    Ok(NbodyRun {
        bodies,
        elapsed,
        workers: p,
    })
}

/// GAS+MPI N-body baseline: one kernel launch per step, host-side
/// broadcasts of each worker's share between launches.
pub fn run_gas(n: usize, p: usize, num_nodes: usize, steps: usize, cost: CostModel) -> NbodyRun {
    let placement = RankPlacement::round_robin(num_nodes, p);
    let sw = Stopwatch::start();
    let results = MpiWorld::run(&placement, cost, move |mut comm| {
        let worker = comm.rank();
        let my_range = share(n, p, worker);
        let device = Device::new(
            comm.rank(),
            DeviceConfig::default().with_memory_bytes((2 * n * BODY_BYTES).max(8 << 20)),
            cost,
        );
        let all_ptr = device.malloc(n * BODY_BYTES).unwrap();
        device
            .memcpy_htod(all_ptr, &bodies_to_bytes(&initial_bodies(n)))
            .unwrap();
        for _ in 0..steps {
            // One kernel launch computes this worker's share on the device.
            let range = my_range.clone();
            device
                .launch_sync(1, 32, move |block| {
                    let all = bytes_to_bodies(&block.read_vec(all_ptr, n * BODY_BYTES));
                    let updated = step_range(&all, range.clone());
                    block.write(
                        all_ptr.add(range.start * BODY_BYTES),
                        &bodies_to_bytes(&updated),
                    );
                })
                .unwrap();
            // Host-mediated exchange: every worker broadcasts its share.
            for src_worker in 0..p {
                let range = share(n, p, src_worker);
                let mut buf = if src_worker == worker {
                    device
                        .memcpy_dtoh_vec(
                            all_ptr.add(range.start * BODY_BYTES),
                            range.len() * BODY_BYTES,
                        )
                        .unwrap()
                } else {
                    Vec::new()
                };
                comm.bcast(src_worker, &mut buf).unwrap();
                if src_worker != worker {
                    device
                        .memcpy_htod(all_ptr.add(range.start * BODY_BYTES), &buf)
                        .unwrap();
                }
            }
        }
        if worker == 0 {
            Some(bytes_to_bodies(
                &device.memcpy_dtoh_vec(all_ptr, n * BODY_BYTES).unwrap(),
            ))
        } else {
            None
        }
    });
    let elapsed = sw.elapsed();
    let bodies = results
        .into_iter()
        .flatten()
        .next()
        .expect("worker 0 result");
    NbodyRun {
        bodies,
        elapsed,
        workers: p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_serialisation_roundtrip() {
        let bodies = initial_bodies(17);
        let back = bytes_to_bodies(&bodies_to_bytes(&bodies));
        assert_eq!(bodies, back);
    }

    #[test]
    fn share_partitions_exactly() {
        let n = 103;
        let p = 8;
        let mut covered = Vec::new();
        for w in 0..p {
            covered.extend(share(n, p, w));
        }
        assert_eq!(covered, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn reference_conserves_body_count_and_moves_bodies() {
        let before = initial_bodies(32);
        let after = simulate_reference(32, 3);
        assert_eq!(after.len(), 32);
        assert_ne!(before[0].pos, after[0].pos);
    }

    #[test]
    fn dcgn_nbody_matches_reference() {
        let run = run_dcgn_gpu(48, 2, 1, 2, CostModel::zero()).unwrap();
        assert_eq!(run.bodies.len(), 48);
        assert!(run.max_position_error(2) < 1e-4);
    }

    #[test]
    fn dcgn_nbody_multi_node() {
        let run = run_dcgn_gpu(48, 2, 2, 2, CostModel::zero()).unwrap();
        assert!(run.max_position_error(2) < 1e-4);
    }

    #[test]
    fn gas_nbody_matches_reference() {
        let run = run_gas(48, 4, 2, 2, CostModel::zero());
        assert!(run.max_position_error(2) < 1e-4);
    }
}
