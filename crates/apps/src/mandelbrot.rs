//! Mandelbrot fractal generation with a dynamic work queue — the paper's
//! "unpredictable communication" application (§4, Figure 5, §5.1).
//!
//! * `run_dcgn_gpu`: master/worker with DCGN.  Rank 0 is a CPU-kernel thread
//!   acting as the work-queue master; every GPU slot is a worker that asks
//!   the master for an image strip, renders it on the device, sends the
//!   pixels back and asks for more.
//! * `run_gas`: the GPU-as-slave baseline — rows are statically partitioned,
//!   each worker renders its share in one kernel launch and the host ships
//!   the result to the master with plain MPI.

use std::sync::Arc;
use std::time::Duration;

use dcgn::{CostModel, DcgnConfig, DcgnError, NodeConfig, Runtime};
use dcgn_dpm::{Device, DeviceConfig};
use dcgn_rmpi::{MpiWorld, RankPlacement};
use dcgn_simtime::Stopwatch;
use parking_lot::Mutex;

/// Shared slot the master rank deposits the rendered image and per-strip
/// ownership table into.
type SharedImageResult = Arc<Mutex<Option<(Vec<u32>, Vec<usize>)>>>;

/// Parameters of a Mandelbrot rendering job.
#[derive(Debug, Clone, Copy)]
pub struct MandelbrotParams {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Maximum escape-time iterations per pixel.
    pub max_iter: u32,
    /// Left edge of the viewport in the complex plane.
    pub x_min: f64,
    /// Right edge of the viewport.
    pub x_max: f64,
    /// Bottom edge of the viewport.
    pub y_min: f64,
    /// Top edge of the viewport.
    pub y_max: f64,
    /// Rows handed out per work-queue request.
    pub strip_rows: usize,
}

impl Default for MandelbrotParams {
    fn default() -> Self {
        MandelbrotParams {
            width: 192,
            height: 192,
            max_iter: 256,
            x_min: -2.2,
            x_max: 1.0,
            y_min: -1.4,
            y_max: 1.4,
            strip_rows: 16,
        }
    }
}

impl MandelbrotParams {
    /// Number of strips the image is divided into.
    pub fn num_strips(&self) -> usize {
        self.height.div_ceil(self.strip_rows)
    }

    /// Number of rows in strip `s` (the last strip may be short).
    pub fn strip_len(&self, s: usize) -> usize {
        let start = s * self.strip_rows;
        self.strip_rows.min(self.height.saturating_sub(start))
    }
}

/// Escape-time iteration count of one pixel.
pub fn pixel_iters(p: &MandelbrotParams, px: usize, py: usize) -> u32 {
    let cx = p.x_min + (p.x_max - p.x_min) * (px as f64 + 0.5) / p.width as f64;
    let cy = p.y_min + (p.y_max - p.y_min) * (py as f64 + 0.5) / p.height as f64;
    let mut x = 0.0f64;
    let mut y = 0.0f64;
    let mut i = 0;
    while i < p.max_iter && x * x + y * y <= 4.0 {
        let nx = x * x - y * y + cx;
        y = 2.0 * x * y + cy;
        x = nx;
        i += 1;
    }
    i
}

/// Render rows `[row0, row0 + nrows)` into a vector of iteration counts.
pub fn render_rows(p: &MandelbrotParams, row0: usize, nrows: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(nrows * p.width);
    for py in row0..row0 + nrows {
        for px in 0..p.width {
            out.push(pixel_iters(p, px, py));
        }
    }
    out
}

/// Sequential reference rendering of the full image.
pub fn render_reference(p: &MandelbrotParams) -> Vec<u32> {
    render_rows(p, 0, p.height)
}

/// Result of a distributed Mandelbrot run.
#[derive(Debug, Clone)]
pub struct MandelbrotRun {
    /// Iteration counts, row-major, `width × height`.
    pub image: Vec<u32>,
    /// Which worker rank rendered each strip (Figure 5's colour coding).
    pub strip_owner: Vec<usize>,
    /// Wall-clock time of the launch.
    pub elapsed: Duration,
    /// Throughput in pixels per second.
    pub pixels_per_sec: f64,
    /// Number of worker ranks that participated.
    pub workers: usize,
}

fn encode_header(row_start: usize, row_count: usize, rank: usize) -> [u8; 12] {
    let mut h = [0u8; 12];
    h[0..4].copy_from_slice(&(row_start as u32).to_le_bytes());
    h[4..8].copy_from_slice(&(row_count as u32).to_le_bytes());
    h[8..12].copy_from_slice(&(rank as u32).to_le_bytes());
    h
}

fn decode_u32(bytes: &[u8], off: usize) -> usize {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize
}

/// Run the DCGN master/worker Mandelbrot generator.
///
/// The job uses one CPU-kernel thread on node 0 as the work-queue master and
/// `gpus_per_node × slots` GPU slots per node as workers.
pub fn run_dcgn_gpu(
    params: MandelbrotParams,
    num_nodes: usize,
    gpus_per_node: usize,
    slots: usize,
    cost: CostModel,
) -> Result<MandelbrotRun, DcgnError> {
    let mut nodes = Vec::new();
    for n in 0..num_nodes {
        let cpus = if n == 0 { 1 } else { 0 };
        nodes.push(
            NodeConfig::new(cpus, gpus_per_node, slots)
                .with_device(DeviceConfig::default().with_multiprocessors(slots.max(2))),
        );
    }
    let config = DcgnConfig::heterogeneous(nodes).with_cost(cost);
    let runtime = Runtime::new(config)?;
    let total_ranks = runtime.rank_map().total_ranks();
    let workers = total_ranks - 1;
    if workers == 0 {
        return Err(DcgnError::InvalidConfig(
            "mandelbrot needs at least one GPU worker".into(),
        ));
    }

    let result: SharedImageResult = Arc::new(Mutex::new(None));
    let result_for_master = Arc::clone(&result);
    let strip_bytes = 12 + params.strip_rows * params.width * 4;

    let sw = Stopwatch::start();
    let report = runtime.launch_with_gpu_setup(
        // ---------------- master (CPU rank 0) ----------------
        move |ctx| {
            if ctx.rank() != 0 {
                return;
            }
            let mut image = vec![0u32; params.width * params.height];
            let mut strip_owner = vec![usize::MAX; params.num_strips()];
            let mut next_strip = 0usize;
            let mut strips_done = 0usize;
            let mut workers_released = 0usize;
            let total_strips = params.num_strips();
            let total_workers = ctx.size() - 1;
            while strips_done < total_strips || workers_released < total_workers {
                let (msg, status) = ctx.recv_any().expect("master recv");
                let row_start = decode_u32(msg.as_slice(), 0);
                let row_count = decode_u32(msg.as_slice(), 4);
                let worker = decode_u32(&msg, 8);
                if row_count > 0 {
                    // A finished strip came back.
                    let pixels: Vec<u32> = msg.as_slice()[12..]
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    for (i, v) in pixels.iter().enumerate() {
                        let row = row_start + i / params.width;
                        let col = i % params.width;
                        if row < params.height {
                            image[row * params.width + col] = *v;
                        }
                    }
                    strip_owner[row_start / params.strip_rows] = worker;
                    strips_done += 1;
                }
                // Assign more work or release the worker.
                if next_strip < total_strips {
                    let start = next_strip * params.strip_rows;
                    let count = params.strip_len(next_strip);
                    next_strip += 1;
                    ctx.send(status.source, &encode_header(start, count, 0))
                        .expect("master assign");
                } else {
                    ctx.send(status.source, &encode_header(0, 0, 0))
                        .expect("master release");
                    workers_released += 1;
                }
            }
            *result_for_master.lock() = Some((image, strip_owner));
        },
        // ---------------- per-GPU setup ----------------
        move |setup| {
            // One strip-sized exchange buffer per slot.
            let dev = setup.device();
            let mut bufs = Vec::new();
            for _ in 0..setup.slots() {
                bufs.push(dev.malloc(strip_bytes).expect("strip buffer"));
            }
            bufs
        },
        // ---------------- worker kernel (one block per slot) ----------------
        move |ctx, bufs| {
            let slot = ctx.slot_for_block();
            if ctx.block().block_id() >= ctx.slots() {
                return;
            }
            let me = ctx.rank(slot);
            let block = ctx.block();
            let buf = bufs[slot];
            // Initial request: row_count == 0 signals "give me work".
            block.write(buf, &encode_header(0, 0, me));
            ctx.send(slot, 0, buf, 12);
            loop {
                ctx.recv(slot, 0, buf, 12);
                let header = block.read_vec(buf, 8);
                let row_start = decode_u32(&header, 0);
                let row_count = decode_u32(&header, 4);
                if row_count == 0 {
                    break;
                }
                // Render the strip with the block's logical threads, writing
                // pixels straight into device memory after the header.
                let mut pixels = Vec::with_capacity(row_count * params.width);
                block.for_each_thread(|tid| {
                    let range = block.thread_range(tid, row_count * params.width);
                    for idx in range {
                        let row = row_start + idx / params.width;
                        let col = idx % params.width;
                        pixels.push(pixel_iters(&params, col, row));
                    }
                });
                let mut payload = Vec::with_capacity(12 + pixels.len() * 4);
                payload.extend_from_slice(&encode_header(row_start, row_count, me));
                for v in &pixels {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
                block.write(buf, &payload);
                ctx.send(slot, 0, buf, payload.len());
            }
        },
        |_setup, _bufs| {},
    )?;

    let elapsed = sw.elapsed();
    let _ = report;
    let (image, strip_owner) = result
        .lock()
        .take()
        .ok_or_else(|| DcgnError::Internal("master produced no image".into()))?;
    let pixels = (params.width * params.height) as f64;
    Ok(MandelbrotRun {
        image,
        strip_owner,
        pixels_per_sec: pixels / elapsed.as_secs_f64(),
        elapsed,
        workers,
    })
}

/// GPU-as-slave + MPI baseline: rows are statically partitioned across
/// workers, each worker renders its share in a single kernel launch and the
/// host forwards the pixels to rank 0 with plain MPI.
pub fn run_gas(
    params: MandelbrotParams,
    num_workers: usize,
    num_nodes: usize,
    cost: CostModel,
) -> MandelbrotRun {
    assert!(num_workers >= 1);
    // Rank 0 is the master; workers are ranks 1..=num_workers.
    let placement = RankPlacement::round_robin(num_nodes, num_workers + 1);
    let params = Arc::new(params);
    let sw = Stopwatch::start();
    let results = MpiWorld::run(&placement, cost, {
        let params = Arc::clone(&params);
        move |mut comm| {
            let p = *params;
            if comm.rank() == 0 {
                let mut image = vec![0u32; p.width * p.height];
                let mut strip_owner = vec![0usize; p.num_strips()];
                for _ in 0..(comm.size() - 1) {
                    let (msg, status) = comm.recv(None, Some(0)).unwrap();
                    let row_start = decode_u32(msg.as_slice(), 0);
                    let row_count = decode_u32(msg.as_slice(), 4);
                    let pixels: Vec<u32> = msg.as_slice()[12..]
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    for (i, v) in pixels.iter().enumerate() {
                        image[row_start * p.width + i] = *v;
                    }
                    for (s, owner) in strip_owner.iter_mut().enumerate() {
                        let row = s * p.strip_rows;
                        if row >= row_start && row < row_start + row_count {
                            *owner = status.source;
                        }
                    }
                }
                Some((image, strip_owner))
            } else {
                // Static partition: worker w of W gets rows [w*share, ...).
                let workers = comm.size() - 1;
                let w = comm.rank() - 1;
                let share = p.height.div_ceil(workers);
                let row_start = (w * share).min(p.height);
                let row_count = share.min(p.height - row_start);
                // GPU-as-slave: render on the device, then pull the pixels
                // back to the host before communicating.
                let device = Device::new(comm.rank(), DeviceConfig::default(), cost);
                let out = device
                    .malloc((row_count.max(1)) * p.width * 4)
                    .expect("device output");
                device
                    .launch_sync(1, 32, move |block| {
                        let mut pixels = Vec::with_capacity(row_count * p.width);
                        block.for_each_thread(|tid| {
                            let range = block.thread_range(tid, row_count * p.width);
                            for idx in range {
                                let row = row_start + idx / p.width;
                                let col = idx % p.width;
                                pixels.push(pixel_iters(&p, col, row));
                            }
                        });
                        let bytes: Vec<u8> = pixels.iter().flat_map(|v| v.to_le_bytes()).collect();
                        block.write(out, &bytes);
                    })
                    .expect("gas kernel");
                let bytes = device
                    .memcpy_dtoh_vec(out, row_count * p.width * 4)
                    .expect("readback");
                let mut msg = Vec::with_capacity(12 + bytes.len());
                msg.extend_from_slice(&encode_header(row_start, row_count, comm.rank()));
                msg.extend_from_slice(&bytes);
                comm.send(0, 0, &msg).unwrap();
                None
            }
        }
    });
    let elapsed = sw.elapsed();
    let (image, strip_owner) = results
        .into_iter()
        .flatten()
        .next()
        .expect("master result present");
    let pixels = (params.width * params.height) as f64;
    MandelbrotRun {
        image,
        strip_owner,
        pixels_per_sec: pixels / elapsed.as_secs_f64(),
        elapsed,
        workers: num_workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MandelbrotParams {
        MandelbrotParams {
            width: 32,
            height: 32,
            max_iter: 64,
            strip_rows: 8,
            ..MandelbrotParams::default()
        }
    }

    #[test]
    fn strip_accounting() {
        let p = tiny();
        assert_eq!(p.num_strips(), 4);
        assert_eq!(p.strip_len(0), 8);
        let odd = MandelbrotParams {
            height: 30,
            ..tiny()
        };
        assert_eq!(odd.num_strips(), 4);
        assert_eq!(odd.strip_len(3), 6);
    }

    #[test]
    fn interior_points_hit_max_iter() {
        let p = tiny();
        // The origin is inside the set.
        let px = (p.width as f64 * (0.0 - p.x_min) / (p.x_max - p.x_min)) as usize;
        let py = (p.height as f64 * (0.0 - p.y_min) / (p.y_max - p.y_min)) as usize;
        assert_eq!(pixel_iters(&p, px, py), p.max_iter);
        // A point far outside escapes immediately.
        assert!(pixel_iters(&p, 0, 0) < 4);
    }

    #[test]
    fn render_rows_matches_reference_slice() {
        let p = tiny();
        let reference = render_reference(&p);
        let rows = render_rows(&p, 8, 8);
        assert_eq!(rows, reference[8 * p.width..16 * p.width].to_vec());
    }

    #[test]
    fn dcgn_gpu_run_matches_reference() {
        let p = tiny();
        let run = run_dcgn_gpu(p, 1, 2, 1, CostModel::zero()).unwrap();
        assert_eq!(run.image, render_reference(&p));
        assert_eq!(run.workers, 2);
        // Every strip was rendered by a real worker rank (1 or 2).
        assert!(run.strip_owner.iter().all(|&w| w == 1 || w == 2));
        assert!(run.pixels_per_sec > 0.0);
    }

    #[test]
    fn gas_run_matches_reference() {
        let p = tiny();
        let run = run_gas(p, 2, 1, CostModel::zero());
        assert_eq!(run.image, render_reference(&p));
    }

    #[test]
    fn dcgn_multi_node_run_matches_reference() {
        let p = tiny();
        let run = run_dcgn_gpu(p, 2, 1, 1, CostModel::zero()).unwrap();
        assert_eq!(run.image, render_reference(&p));
        assert_eq!(run.workers, 2);
    }
}
