//! Benchmark applications from the DCGN paper (Stuart & Owens, IPDPS 2009),
//! each in two variants:
//!
//! * a **DCGN** implementation in which GPU slots are first-class
//!   communication targets (dynamic work queues, device-sourced
//!   `sendrecv_replace`, device-sourced broadcasts), and
//! * a **GAS+MPI** baseline (GPU-as-slave: statically partitioned work,
//!   host-mediated communication between kernel launches) — the model the
//!   paper compares against in §5.1.
//!
//! The applications are:
//!
//! | Module | Paper role | Communication pattern |
//! |---|---|---|
//! | [`mandelbrot`] | unpredictable communication (Figure 5) | dynamic master/worker queue |
//! | [`cannon`] | simultaneous communication | ring rotations via `sendrecv_replace` |
//! | [`nbody`] | one-to-all | per-step broadcasts |

#![warn(missing_docs)]

pub mod cannon;
pub mod mandelbrot;
pub mod nbody;

pub use cannon::{run_dcgn_gpu as cannon_dcgn, run_gas as cannon_gas, CannonRun};
pub use mandelbrot::{
    run_dcgn_gpu as mandelbrot_dcgn, run_gas as mandelbrot_gas, MandelbrotParams, MandelbrotRun,
};
pub use nbody::{run_dcgn_gpu as nbody_dcgn, run_gas as nbody_gas, NbodyRun};
