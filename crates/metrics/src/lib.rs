//! # `dcgn_metrics` — the stack-wide runtime metrics registry
//!
//! Every layer of the DCGN stack (device DMA, fabric, payload pool, rmpi
//! point-to-point, the comm thread's collective engine, the GPU polling
//! thread) reports into one registry through three instrument kinds:
//!
//! * [`Counter`] — a monotonically increasing relaxed-ordering atomic.
//! * [`Gauge`] — a current value with lock-free high-water tracking.
//! * [`Histogram`] — log-bucketed latencies: 64 fixed power-of-two buckets,
//!   recorded with two relaxed atomic adds and zero allocation, with
//!   p50/p90/p99 derived at snapshot time.
//!
//! Instruments are resolved *once* by name from a [`MetricsHandle`] (a
//! cheaply cloneable reference to the registry) and then updated without
//! any locking: the hot path touches only relaxed atomics.  A handle can
//! also be **disabled** ([`MetricsHandle::disabled`]), in which case every
//! instrument it hands out is a no-op — the branch on an `Option` is the
//! entire overhead, which the `metrics_overhead` micro-bench guards.
//!
//! [`MetricsHandle::snapshot`] produces a point-in-time [`MetricsSnapshot`]:
//! sorted name → value maps that serialize to (and parse from) the same
//! hand-rolled JSON style as `BENCH_pr3.json`, support subtraction
//! ([`MetricsSnapshot::delta_since`]) for per-benchmark attribution, and
//! can merge per-node instrument instances into stack-wide totals
//! ([`MetricsSnapshot::aggregated`]).
//!
//! Naming convention: dot-separated, lowest layer first, with per-instance
//! suffixes `…​.node{N}` (and `…​.node{N}.gpu{G}` for per-GPU-thread
//! instruments) so [`MetricsSnapshot::aggregated`] can fold instances.
//!
//! ```
//! use dcgn_metrics::MetricsHandle;
//!
//! let metrics = MetricsHandle::new();
//! let frames = metrics.counter("fabric.frames.node0");
//! frames.add(3);
//! let lat = metrics.histogram("collective.latency.comm0.barrier.star.node0");
//! lat.record(1500);
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("fabric.frames.node0"), 3);
//! let reparsed = dcgn_metrics::MetricsSnapshot::parse(&snap.to_json()).unwrap();
//! assert_eq!(reparsed.counter("fabric.frames.node0"), 3);
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Number of power-of-two latency buckets.  Bucket `i` holds values whose
/// bit length is `i` (bucket 0 holds only zero), i.e. the half-open value
/// range `[2^(i-1), 2^i)`; every `u64` maps to exactly one bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.  Cloning shares the underlying
/// atomic; a disabled counter ignores updates and reads zero.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter: `add`/`inc` do nothing, `get` reads 0.
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Add `n` to the counter (relaxed ordering — safe for concurrent
    /// hot-path use, totals are exact).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(v) = &self.0 {
            v.fetch_add(n, Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |v| v.load(Relaxed))
    }
}

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicU64,
    high_water: AtomicU64,
}

/// A current-value instrument (queue depth, pool occupancy) that also
/// tracks its lifetime maximum lock-free via `fetch_max`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeInner>>);

impl Gauge {
    /// A no-op gauge.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Set the gauge to `v`, raising the high-water mark if `v` exceeds it.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.value.store(v, Relaxed);
            g.high_water.fetch_max(v, Relaxed);
        }
    }

    /// Add `n` to the gauge, raising the high-water mark as needed.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(g) = &self.0 {
            let now = g.value.fetch_add(n, Relaxed) + n;
            g.high_water.fetch_max(now, Relaxed);
        }
    }

    /// Subtract `n` (saturating at zero under well-ordered use; concurrent
    /// under-decrements wrap like any atomic — callers own pairing).
    #[inline]
    pub fn sub(&self, n: u64) {
        if let Some(g) = &self.0 {
            g.value.fetch_sub(n, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.value.load(Relaxed))
    }

    /// Lifetime maximum observed by `set`/`add`.
    pub fn high_water(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.high_water.load(Relaxed))
    }
}

struct HistInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistInner {
    fn new() -> Self {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for HistInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistInner")
            .field("count", &self.count.load(Relaxed))
            .field("sum", &self.sum.load(Relaxed))
            .field("max", &self.max.load(Relaxed))
            .finish_non_exhaustive()
    }
}

/// Bucket index for a recorded value: its bit length (0 for 0), so bucket
/// `i ≥ 1` covers `[2^(i-1), 2^i)` and the quantile upper bound for the
/// bucket is `2^i − 1`.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Upper bound of the value range bucket `i` covers (the value a quantile
/// falling in that bucket reports).
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log-bucketed latency histogram.  Recording is two relaxed atomic adds
/// plus a `fetch_max` — no locks, no allocation.  Quantiles are derived at
/// snapshot time from the fixed power-of-two buckets, so a reported pXX is
/// an upper bound accurate to within 2× (one bucket).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistInner>>);

impl Histogram {
    /// A no-op histogram.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_index(v) % HISTOGRAM_BUCKETS].fetch_add(1, Relaxed);
            h.count.fetch_add(1, Relaxed);
            h.sum.fetch_add(v, Relaxed);
            h.max.fetch_max(v, Relaxed);
        }
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Snapshot this histogram's state.
    pub fn stats(&self) -> HistogramStats {
        match &self.0 {
            None => HistogramStats::default(),
            Some(h) => {
                let buckets: Vec<u64> = h.buckets.iter().map(|b| b.load(Relaxed)).collect();
                // Quantiles walk the cumulative counts; with racing
                // recorders the per-bucket loads may straggle behind
                // `count`, so quantile targets use the bucket total.
                let total: u64 = buckets.iter().sum();
                let quantile = |q: f64| -> u64 {
                    if total == 0 {
                        return 0;
                    }
                    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
                    let mut cum = 0u64;
                    for (i, &c) in buckets.iter().enumerate() {
                        cum += c;
                        if cum >= target {
                            return bucket_upper_bound(i);
                        }
                    }
                    bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
                };
                HistogramStats {
                    count: h.count.load(Relaxed),
                    sum: h.sum.load(Relaxed),
                    max: h.max.load(Relaxed),
                    p50: quantile(0.50),
                    p90: quantile(0.90),
                    p99: quantile(0.99),
                }
            }
        }
    }
}

/// Point-in-time view of one histogram: totals plus bucket-resolution
/// quantiles (each pXX is the upper bound of the bucket the quantile
/// falls in).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
    /// 50th-percentile upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
}

/// Point-in-time view of one gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeStats {
    /// Value at snapshot time.
    pub value: u64,
    /// Lifetime maximum at snapshot time.
    pub high_water: u64,
}

#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeInner>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistInner>>>,
}

/// A cheaply cloneable reference to a metrics registry.  Resolving an
/// instrument by name takes a short-lived registry lock (do it once at
/// setup); the returned instrument updates lock-free thereafter.
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle {
    inner: Option<Arc<Registry>>,
}

impl MetricsHandle {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        MetricsHandle {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// A disabled handle: every instrument it resolves is a no-op and
    /// [`MetricsHandle::snapshot`] is empty.  Use to measure (or opt out
    /// of) instrumentation overhead.
    pub fn disabled() -> Self {
        MetricsHandle { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Two handles referring to the same underlying registry?
    pub fn same_registry(&self, other: &MetricsHandle) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::disabled(),
            Some(reg) => {
                let mut map = reg.counters.lock().expect("metrics registry poisoned");
                Counter(Some(Arc::clone(map.entry(name.to_string()).or_default())))
            }
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::disabled(),
            Some(reg) => {
                let mut map = reg.gauges.lock().expect("metrics registry poisoned");
                Gauge(Some(Arc::clone(map.entry(name.to_string()).or_default())))
            }
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram::disabled(),
            Some(reg) => {
                let mut map = reg.histograms.lock().expect("metrics registry poisoned");
                Histogram(Some(Arc::clone(
                    map.entry(name.to_string())
                        .or_insert_with(|| Arc::new(HistInner::new())),
                )))
            }
        }
    }

    /// A point-in-time snapshot of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(reg) = &self.inner else {
            return snap;
        };
        for (name, v) in reg
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
        {
            snap.counters.insert(name.clone(), v.load(Relaxed));
        }
        for (name, g) in reg.gauges.lock().expect("metrics registry poisoned").iter() {
            snap.gauges.insert(
                name.clone(),
                GaugeStats {
                    value: g.value.load(Relaxed),
                    high_water: g.high_water.load(Relaxed),
                },
            );
        }
        for (name, h) in reg
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
        {
            snap.histograms
                .insert(name.clone(), Histogram(Some(Arc::clone(h))).stats());
        }
        snap
    }
}

/// The process-wide default registry.  Substrate singletons (the payload
/// pool, fabrics) and anything not handed an explicit [`MetricsHandle`]
/// report here.
pub fn global() -> &'static MetricsHandle {
    static GLOBAL: OnceLock<MetricsHandle> = OnceLock::new();
    GLOBAL.get_or_init(MetricsHandle::new)
}

/// A point-in-time capture of a registry: sorted `name → value` maps, with
/// JSON round-tripping, deltas, and per-node aggregation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values and high-water marks by name.
    pub gauges: BTreeMap<String, GaugeStats>,
    /// Histogram stats by name.
    pub histograms: BTreeMap<String, HistogramStats>,
}

impl MetricsSnapshot {
    /// Counter total by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum_by_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Gauge stats by name (zeroes if absent).
    pub fn gauge(&self, name: &str) -> GaugeStats {
        self.gauges.get(name).copied().unwrap_or_default()
    }

    /// Histogram stats by name (zeroes if absent).
    pub fn histogram(&self, name: &str) -> HistogramStats {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// The change since `earlier`: counters and histogram count/sum
    /// subtract (saturating); gauges and histogram max/quantiles take this
    /// snapshot's value (they are states, not accumulations).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut delta = self.clone();
        for (name, v) in delta.counters.iter_mut() {
            *v = v.saturating_sub(earlier.counter(name));
        }
        for (name, h) in delta.histograms.iter_mut() {
            let prev = earlier.histogram(name);
            h.count = h.count.saturating_sub(prev.count);
            h.sum = h.sum.saturating_sub(prev.sum);
        }
        delta
    }

    /// Fold per-instance instruments (`…​.node{N}` / `…​.node{N}.gpu{G}`
    /// suffixes) into stack-wide totals keyed by the stripped name.
    /// Counters sum; gauge values sum and high-waters take the max (the
    /// per-instance marks need not coincide in time, so the aggregate
    /// high-water is a lower bound); histogram count/sum sum while
    /// max/quantiles take the max (an upper bound).
    pub fn aggregated(&self) -> MetricsSnapshot {
        let mut agg = MetricsSnapshot::default();
        for (name, &v) in &self.counters {
            *agg.counters.entry(strip_instance(name)).or_insert(0) += v;
        }
        for (name, g) in &self.gauges {
            let e = agg.gauges.entry(strip_instance(name)).or_default();
            e.value += g.value;
            e.high_water = e.high_water.max(g.high_water);
        }
        for (name, h) in &self.histograms {
            let e = agg.histograms.entry(strip_instance(name)).or_default();
            e.count += h.count;
            e.sum += h.sum;
            e.max = e.max.max(h.max);
            e.p50 = e.p50.max(h.p50);
            e.p90 = e.p90.max(h.p90);
            e.p99 = e.p99.max(h.p99);
        }
        agg
    }

    /// Serialize in the repository's hand-rolled JSON style (the
    /// `BENCH_pr3.json` dialect): one entry per line, sorted names,
    /// integers only.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("    \"{name}\": {v}"));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (name, g) in &self.gauges {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!(
                "    \"{name}\": {{ \"value\": {}, \"high_water\": {} }}",
                g.value, g.high_water
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!(
                "    \"{name}\": {{ \"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                h.count, h.sum, h.max, h.p50, h.p90, h.p99
            ));
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Parse a snapshot previously rendered by [`MetricsSnapshot::to_json`].
    /// Returns `None` on any structural surprise (the parser accepts
    /// exactly this crate's dialect, not general JSON).
    pub fn parse(text: &str) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::default();
        let counters = section(text, "counters")?;
        for (name, body) in entries(counters) {
            snap.counters.insert(name, body.trim().parse().ok()?);
        }
        let gauges = section(text, "gauges")?;
        for (name, body) in entries(gauges) {
            snap.gauges.insert(
                name,
                GaugeStats {
                    value: obj_field(&body, "value")?,
                    high_water: obj_field(&body, "high_water")?,
                },
            );
        }
        let histograms = section(text, "histograms")?;
        for (name, body) in entries(histograms) {
            snap.histograms.insert(
                name,
                HistogramStats {
                    count: obj_field(&body, "count")?,
                    sum: obj_field(&body, "sum")?,
                    max: obj_field(&body, "max")?,
                    p50: obj_field(&body, "p50")?,
                    p90: obj_field(&body, "p90")?,
                    p99: obj_field(&body, "p99")?,
                },
            );
        }
        Some(snap)
    }
}

/// Strip a trailing per-instance suffix: `a.b.node3` → `a.b`,
/// `gpu.polls.node1.gpu0` → `gpu.polls`.  Names without such a suffix pass
/// through unchanged.
fn strip_instance(name: &str) -> String {
    let mut parts: Vec<&str> = name.split('.').collect();
    while parts.len() > 1 {
        let last = parts[parts.len() - 1];
        let instance = ["node", "gpu"].iter().any(|p| {
            last.strip_prefix(p)
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        });
        if !instance {
            break;
        }
        parts.pop();
    }
    parts.join(".")
}

/// Extract the body between the braces of `"key": { … }`, tracking brace
/// depth so nested objects survive.
fn section<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = text.find(&tag)? + tag.len();
    let rest = text[start..].trim_start();
    let open = text.len() - rest.len();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, ch) in text[open..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&text[open + 1..open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Iterate `"name": value` entries of an object body, where value is
/// either a bare integer or a `{ … }` object (no deeper nesting).
fn entries(body: &str) -> impl Iterator<Item = (String, String)> + '_ {
    let mut rest = body;
    std::iter::from_fn(move || {
        let open = rest.find('"')?;
        let after = &rest[open + 1..];
        let close = after.find('"')?;
        let name = after[..close].to_string();
        let after_colon = after[close + 1..].trim_start().strip_prefix(':')?;
        let after_colon = after_colon.trim_start();
        let (value, remaining) = if let Some(obj) = after_colon.strip_prefix('{') {
            let end = obj.find('}')?;
            (obj[..end].to_string(), &obj[end + 1..])
        } else {
            let end = after_colon.find([',', '\n']).unwrap_or(after_colon.len());
            (after_colon[..end].to_string(), &after_colon[end..])
        };
        rest = remaining;
        Some((name, value))
    })
}

/// Read the integer field `key` out of a flat object body.
fn obj_field(body: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = body.find(&tag)? + tag.len();
    let rest = body[start..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_sum_exactly_across_threads() {
        let metrics = MetricsHandle::new();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        thread::scope(|s| {
            for _ in 0..THREADS {
                let c = metrics.counter("test.hits");
                let g = metrics.gauge("test.depth");
                let h = metrics.histogram("test.lat");
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        g.add(1);
                        g.sub(1);
                        h.record(i);
                    }
                });
            }
        });
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("test.hits"), THREADS as u64 * PER_THREAD);
        assert_eq!(snap.gauge("test.depth").value, 0);
        assert!(snap.gauge("test.depth").high_water >= 1);
        assert_eq!(
            snap.histogram("test.lat").count,
            THREADS as u64 * PER_THREAD
        );
        assert_eq!(snap.histogram("test.lat").max, PER_THREAD - 1);
    }

    #[test]
    fn bucket_boundaries_are_bit_lengths() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = MetricsHandle::new().histogram("empty");
        assert_eq!(h.stats(), HistogramStats::default());
    }

    #[test]
    fn single_sample_histogram_puts_every_quantile_in_its_bucket() {
        let h = MetricsHandle::new().histogram("one");
        h.record(100); // bit length 7 → bucket upper bound 127
        let s = h.stats();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 100);
        assert_eq!(s.max, 100);
        assert_eq!((s.p50, s.p90, s.p99), (127, 127, 127));
    }

    #[test]
    fn quantiles_split_across_buckets() {
        let h = MetricsHandle::new().histogram("q");
        // 90 fast samples (bucket ≤ [8,15]) and 10 slow (bucket [1024,2047]).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        let s = h.stats();
        assert_eq!(s.p50, 15);
        assert_eq!(s.p90, 15); // the 90th sample is still fast
        assert_eq!(s.p99, 2047);
        assert_eq!(s.max, 1500);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let h = MetricsHandle::new().histogram("z");
        h.record(0);
        let s = h.stats();
        assert_eq!((s.count, s.sum, s.max, s.p50), (1, 0, 0, 0));
    }

    #[test]
    fn disabled_handle_is_inert() {
        let metrics = MetricsHandle::disabled();
        assert!(!metrics.is_enabled());
        let c = metrics.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = metrics.gauge("y");
        g.set(9);
        assert_eq!(g.high_water(), 0);
        let h = metrics.histogram("z");
        h.record(1);
        assert_eq!(h.stats().count, 0);
        assert_eq!(metrics.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn instruments_share_state_by_name() {
        let metrics = MetricsHandle::new();
        metrics.counter("shared").add(2);
        metrics.counter("shared").add(3);
        assert_eq!(metrics.snapshot().counter("shared"), 5);
        assert!(metrics.same_registry(&metrics.clone()));
        assert!(!metrics.same_registry(&MetricsHandle::new()));
        assert!(MetricsHandle::disabled().same_registry(&MetricsHandle::disabled()));
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let metrics = MetricsHandle::new();
        metrics.counter("fabric.frames.node0").add(12);
        metrics.counter("fabric.frames.node1").add(7);
        metrics.gauge("pool.retained").set(42);
        let h = metrics.histogram("collective.latency.comm0.barrier.star.node0");
        h.record(1000);
        h.record(2000);
        let snap = metrics.snapshot();
        let json = snap.to_json();
        let parsed = MetricsSnapshot::parse(&json).expect("own dialect parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn empty_snapshot_json_roundtrips() {
        let snap = MetricsSnapshot::default();
        let parsed = MetricsSnapshot::parse(&snap.to_json()).expect("empty dialect parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(MetricsSnapshot::parse(""), None);
        assert_eq!(MetricsSnapshot::parse("{}"), None);
        assert_eq!(MetricsSnapshot::parse("{\"counters\": {\"a\": x}}"), None);
    }

    #[test]
    fn delta_subtracts_counters_and_histogram_totals() {
        let metrics = MetricsHandle::new();
        let c = metrics.counter("c");
        let h = metrics.histogram("h");
        c.add(10);
        h.record(100);
        let before = metrics.snapshot();
        c.add(5);
        h.record(200);
        let delta = metrics.snapshot().delta_since(&before);
        assert_eq!(delta.counter("c"), 5);
        assert_eq!(delta.histogram("h").count, 1);
        assert_eq!(delta.histogram("h").sum, 200);
    }

    #[test]
    fn aggregation_strips_instance_suffixes() {
        let metrics = MetricsHandle::new();
        metrics.counter("fabric.frames.node0").add(3);
        metrics.counter("fabric.frames.node1").add(4);
        metrics.counter("gpu.polls.node0.gpu1").add(9);
        metrics.gauge("comm.queue_depth.node0").set(2);
        metrics.gauge("comm.queue_depth.node1").set(5);
        let agg = metrics.snapshot().aggregated();
        assert_eq!(agg.counter("fabric.frames"), 7);
        assert_eq!(agg.counter("gpu.polls"), 9);
        assert_eq!(agg.gauge("comm.queue_depth").value, 7);
        assert_eq!(agg.gauge("comm.queue_depth").high_water, 5);
        assert_eq!(strip_instance("plain.name"), "plain.name");
        assert_eq!(strip_instance("a.nodeX"), "a.nodeX");
        assert_eq!(strip_instance("node1"), "node1");
    }
}
