//! Umbrella crate for the DCGN reproduction workspace.
//!
//! This package owns the repository-level integration tests (`tests/`) and
//! examples (`examples/`) that span every crate in the workspace.  The actual
//! library lives in [`dcgn`] and its substrate crates; this stub only
//! re-exports the top-level entry points so `cargo doc` presents one front
//! door.

#![warn(missing_docs)]

pub use dcgn::{DcgnConfig, Runtime};
