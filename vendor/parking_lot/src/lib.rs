//! Vendored, API-compatible stub of the subset of `parking_lot` used by this
//! workspace: [`Mutex`], [`RwLock`] and [`Condvar`] with the ergonomic
//! (non-poisoning, `Result`-free) locking API, implemented over `std::sync`.
//!
//! The build environment has no crates-registry access, so the real crate
//! cannot be fetched; this stub keeps the call sites source-compatible.
//! Poisoned `std` locks are recovered transparently, matching parking_lot's
//! behaviour of not propagating panics through lock acquisition.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutual-exclusion primitive with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable operating on [`MutexGuard`]s in place (parking_lot
/// style: the guard is passed by `&mut` and remains usable after the wait).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing the guarded mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
