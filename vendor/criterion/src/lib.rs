//! Vendored, API-compatible stub of the subset of `criterion` used by this
//! workspace's benches: `Criterion`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no crates-registry access, so the real crate
//! cannot be fetched.  This stub runs each benchmark for the configured
//! sample count and prints median ± MAD (median absolute deviation) plus
//! min/max timings.  The median/MAD pair is robust to scheduler outliers, so
//! `cargo bench` output is comparable run-to-run — no HTML reports or
//! bootstrap analysis.
//!
//! In addition to the console output, every `criterion_main!` run appends
//! its results to a machine-readable JSON report (see [`write_json_report`])
//! so the performance trajectory can be tracked across commits and checked
//! in CI.

#![warn(missing_docs)]

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Results accumulated by every benchmark run in this process, flushed to
/// the JSON report by `criterion_main!`.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Optional process-wide counter sampler: called before and after every
/// benchmark, with the nonzero deltas attached to the benchmark's record.
/// See [`set_metrics_hook`].
type MetricsHook = Box<dyn Fn() -> Vec<(String, u64)> + Send>;
static METRICS_HOOK: Mutex<Option<MetricsHook>> = Mutex::new(None);

/// Install a hook that samples monotonic counters (name → value).  Each
/// benchmark samples it before and after its timed loop and records the
/// nonzero per-counter deltas in its [`BenchRecord::metrics`], making perf
/// numbers attributable ("this median moved because the frame count did").
pub fn set_metrics_hook<F>(hook: F)
where
    F: Fn() -> Vec<(String, u64)> + Send + 'static,
{
    *METRICS_HOOK.lock().expect("metrics hook lock") = Some(Box::new(hook));
}

fn sample_metrics() -> Vec<(String, u64)> {
    METRICS_HOOK
        .lock()
        .expect("metrics hook lock")
        .as_ref()
        .map_or_else(Vec::new, |hook| hook())
}

/// One benchmark's robust statistics, as recorded in the JSON report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Fully-qualified label (`group/name/parameter`).
    pub name: String,
    /// Median sample time in nanoseconds.
    pub median_ns: u128,
    /// Median absolute deviation in nanoseconds.
    pub mad_ns: u128,
    /// Fastest sample in nanoseconds.
    pub min_ns: u128,
    /// Slowest sample in nanoseconds.
    pub max_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
    /// Counter deltas attributed to this benchmark's whole run (all samples),
    /// from the hook installed with [`set_metrics_hook`].  Empty when no hook
    /// is installed or nothing moved.
    pub metrics: Vec<(String, u64)>,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
    }
}

/// Identifier of one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark called `name` at parameter value `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores the target
    /// measurement time and always runs `sample_size` samples.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does not warm up.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F)
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, f);
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F)
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, |b| f(b, input));
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code under
/// test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, recording one sample per configured iteration.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

/// Median and median-absolute-deviation of a sample set.  The midpoint of
/// the two central elements is used for even counts.  Panics on an empty
/// slice.
pub fn median_and_mad(samples: &[Duration]) -> (Duration, Duration) {
    fn median_of(mut xs: Vec<Duration>) -> Duration {
        xs.sort_unstable();
        let mid = xs.len() / 2;
        if xs.len() % 2 == 1 {
            xs[mid]
        } else {
            (xs[mid - 1] + xs[mid]) / 2
        }
    }
    assert!(!samples.is_empty(), "median of an empty sample set");
    let median = median_of(samples.to_vec());
    let deviations = samples.iter().map(|&s| s.abs_diff(median)).collect();
    (median, median_of(deviations))
}

fn run_bench<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
    };
    let counters_before = sample_metrics();
    for _ in 0..samples {
        f(&mut bencher);
    }
    let metrics = metric_deltas(&counters_before, &sample_metrics());
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let (median, mad) = median_and_mad(&bencher.samples);
    let min = *bencher.samples.iter().min().expect("non-empty");
    let max = *bencher.samples.iter().max().expect("non-empty");
    println!(
        "  {label}: median {median:?} ± {mad:?} MAD (min {min:?} max {max:?}, {} samples)",
        bencher.samples.len()
    );
    RESULTS.lock().expect("results lock").push(BenchRecord {
        name: label.to_string(),
        median_ns: median.as_nanos(),
        mad_ns: mad.as_nanos(),
        min_ns: min.as_nanos(),
        max_ns: max.as_nanos(),
        samples: bencher.samples.len(),
        metrics,
    });
}

/// Per-counter growth between two hook samples, dropping counters that did
/// not move (monotonic counters only, so a saturating subtraction).
fn metric_deltas(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<(String, u64)> {
    after
        .iter()
        .filter_map(|(name, end)| {
            let start = before
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |&(_, v)| v);
            let delta = end.saturating_sub(start);
            (delta > 0).then(|| (name.clone(), delta))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Machine-readable report
// ---------------------------------------------------------------------------

/// Where the JSON report lives: `$DCGN_BENCH_JSON` when set, otherwise
/// `BENCH_pr3.json` next to the enclosing workspace's `Cargo.lock` (so every
/// bench binary of a `cargo bench` run appends to the same file).
pub fn default_report_path() -> PathBuf {
    if let Some(path) = std::env::var_os("DCGN_BENCH_JSON") {
        return path.into();
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("BENCH_pr3.json");
        }
        if !dir.pop() {
            return PathBuf::from("BENCH_pr3.json");
        }
    }
}

/// Flush this process's accumulated benchmark results into the JSON report,
/// merging with (and replacing same-named entries of) an existing file.
/// Called automatically by `criterion_main!`.
pub fn write_json_report() {
    let new = std::mem::take(&mut *RESULTS.lock().expect("results lock"));
    if new.is_empty() {
        return;
    }
    let path = default_report_path();
    let mut records = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse_report(&text).ok())
        .unwrap_or_default();
    for rec in new {
        match records.iter_mut().find(|r| r.name == rec.name) {
            Some(existing) => *existing = rec,
            None => records.push(rec),
        }
    }
    let json = render_report(&records);
    match std::fs::write(&path, json) {
        Ok(()) => println!(
            "wrote {} benchmark records to {}",
            records.len(),
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Serialise records into the report's JSON format (one entry per line; a
/// record with counter deltas carries a flat nested `"metrics"` object).
pub fn render_report(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": {:?}, \"median_ns\": {}, \"mad_ns\": {}, \"min_ns\": {}, \
             \"max_ns\": {}, \"samples\": {}",
            r.name, r.median_ns, r.mad_ns, r.min_ns, r.max_ns, r.samples
        ));
        if !r.metrics.is_empty() {
            out.push_str(", \"metrics\": {");
            for (j, (name, value)) in r.metrics.iter().enumerate() {
                let comma = if j + 1 < r.metrics.len() { ", " } else { "" };
                out.push_str(&format!("{name:?}: {value}{comma}"));
            }
            out.push('}');
        }
        out.push_str(&format!("}}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a report produced by [`render_report`].  Strict: any structural
/// surprise (missing field, unbalanced braces, non-numeric statistic) is an
/// error, so CI can reject malformed or truncated files.
pub fn parse_report(text: &str) -> Result<Vec<BenchRecord>, String> {
    let trimmed = text.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err("report is not a JSON object".into());
    }
    let list_start = trimmed
        .find("\"benchmarks\"")
        .ok_or("missing \"benchmarks\" key")?;
    let after_key = &trimmed[list_start + "\"benchmarks\"".len()..];
    let bracket = after_key.find('[').ok_or("missing benchmark list")?;
    let list_end = after_key.rfind(']').ok_or("unterminated benchmark list")?;
    if list_end < bracket {
        return Err("unterminated benchmark list".into());
    }
    let mut records = Vec::new();
    let mut rest = after_key[bracket + 1..list_end].trim();
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',').trim();
        if rest.is_empty() {
            break;
        }
        if !rest.starts_with('{') {
            return Err(format!("expected an entry object, found: {:.40}…", rest));
        }
        // Entries may nest a metrics object, so the split tracks brace depth
        // instead of cutting at the first close brace.
        let close = matching_close_brace(rest).ok_or("unterminated entry object")?;
        let obj = &rest[1..close];
        records.push(parse_entry(obj)?);
        rest = rest[close + 1..].trim();
    }
    Ok(records)
}

/// Byte offset of the close brace matching the open brace `text` starts
/// with.  Names in this format never contain braces, so no string-state
/// tracking is needed.
fn matching_close_brace(text: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn parse_entry(obj: &str) -> Result<BenchRecord, String> {
    // Split off the optional metrics object first so a metric named after a
    // statistic field can never shadow the real one.
    let (fields, metrics) = match obj.find("\"metrics\"") {
        Some(at) => {
            let after = &obj[at + "\"metrics\"".len()..];
            let open = after.find('{').ok_or("malformed metrics object")?;
            let close = after.find('}').ok_or("unterminated metrics object")?;
            if close < open {
                return Err("malformed metrics object".into());
            }
            (&obj[..at], parse_metrics(&after[open + 1..close])?)
        }
        None => (obj, Vec::new()),
    };
    let str_field = |key: &str| -> Result<String, String> {
        let marker = format!("\"{key}\":");
        let at = fields
            .find(&marker)
            .ok_or_else(|| format!("entry missing field {key:?}"))?;
        let value = fields[at + marker.len()..].trim_start();
        let inner = value
            .strip_prefix('"')
            .ok_or_else(|| format!("field {key:?} is not a string"))?;
        let end = inner
            .find('"')
            .ok_or_else(|| format!("unterminated string for field {key:?}"))?;
        Ok(inner[..end].to_string())
    };
    let num_field = |key: &str| -> Result<u128, String> {
        let marker = format!("\"{key}\":");
        let at = fields
            .find(&marker)
            .ok_or_else(|| format!("entry missing field {key:?}"))?;
        let value = fields[at + marker.len()..].trim_start();
        let digits: String = value.chars().take_while(char::is_ascii_digit).collect();
        digits
            .parse::<u128>()
            .map_err(|_| format!("field {key:?} is not a number"))
    };
    Ok(BenchRecord {
        name: str_field("name")?,
        median_ns: num_field("median_ns")?,
        mad_ns: num_field("mad_ns")?,
        min_ns: num_field("min_ns")?,
        max_ns: num_field("max_ns")?,
        samples: num_field("samples")? as usize,
        metrics,
    })
}

/// Parse the inside of a flat `"name": value` metrics object.
fn parse_metrics(inner: &str) -> Result<Vec<(String, u64)>, String> {
    let mut metrics = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, value) = part
            .split_once(':')
            .ok_or_else(|| format!("malformed metrics entry: {part:.40}"))?;
        let name = name.trim();
        let name = name
            .strip_prefix('"')
            .and_then(|n| n.strip_suffix('"'))
            .ok_or_else(|| format!("metric name is not a string: {name:.40}"))?;
        let value = value
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("metric {name:?} has a non-numeric value"))?;
        metrics.push((name.to_string(), value));
    }
    Ok(metrics)
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given benchmark groups and flushing the JSON
/// report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust_statistics() {
        let ms = Duration::from_millis;
        // Odd count: exact middle; MAD of [1,0,1,9] deviations.
        let (median, mad) = median_and_mad(&[ms(4), ms(5), ms(6), ms(14), ms(3)]);
        assert_eq!(median, ms(5));
        assert_eq!(mad, ms(1));
        // Even count: midpoint of the central pair.
        let (median, mad) = median_and_mad(&[ms(2), ms(4), ms(6), ms(8)]);
        assert_eq!(median, ms(5));
        assert_eq!(mad, ms(2));
        // A single wild outlier barely moves either statistic.
        let (median, mad) = median_and_mad(&[ms(5), ms(5), ms(5), ms(5000)]);
        assert_eq!(median, ms(5));
        assert_eq!(mad, Duration::ZERO);
        // Single sample.
        assert_eq!(median_and_mad(&[ms(7)]), (ms(7), Duration::ZERO));
    }

    #[test]
    fn bench_runs_closure_expected_number_of_times() {
        let mut calls = 0;
        run_bench("t", 4, |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 4);
    }

    #[test]
    fn report_roundtrips_through_render_and_parse() {
        let records = vec![
            BenchRecord {
                name: "group/a/0".into(),
                median_ns: 1234,
                mad_ns: 56,
                min_ns: 1000,
                max_ns: 9999,
                samples: 10,
                metrics: vec![
                    ("fabric.frames".into(), 42),
                    ("pool.acquire_miss".into(), 3),
                ],
            },
            BenchRecord {
                name: "group/b/4096".into(),
                median_ns: 7,
                mad_ns: 0,
                min_ns: 7,
                max_ns: 7,
                samples: 1,
                metrics: Vec::new(),
            },
        ];
        let text = render_report(&records);
        assert_eq!(parse_report(&text).unwrap(), records);
        assert!(parse_report(&render_report(&[])).unwrap().is_empty());
    }

    #[test]
    fn metrics_hook_deltas_are_attributed_to_the_record() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static FAKE: AtomicU64 = AtomicU64::new(0);
        set_metrics_hook(|| vec![("fake.counter".into(), FAKE.load(Ordering::Relaxed))]);
        run_bench("hooked", 2, |b| {
            b.iter(|| FAKE.fetch_add(5, Ordering::Relaxed));
        });
        // Uninstall so other tests sharing the process see no hook.
        *METRICS_HOOK.lock().expect("metrics hook lock") = None;
        let rec = RESULTS
            .lock()
            .expect("results lock")
            .iter()
            .rfind(|r| r.name == "hooked")
            .cloned()
            .expect("record stored");
        assert_eq!(rec.metrics, vec![("fake.counter".to_string(), 10)]);
    }

    #[test]
    fn malformed_metrics_blocks_are_rejected() {
        let bad = "{\n  \"benchmarks\": [\n    {\"name\": \"x\", \"median_ns\": 1, \
                   \"mad_ns\": 1, \"min_ns\": 1, \"max_ns\": 1, \"samples\": 1, \
                   \"metrics\": {\"k\": \"oops\"}}\n  ]\n}\n";
        assert!(parse_report(bad).is_err(), "non-numeric metric value");
        let unterminated = "{\n  \"benchmarks\": [\n    {\"name\": \"x\", \"median_ns\": 1, \
                   \"mad_ns\": 1, \"min_ns\": 1, \"max_ns\": 1, \"samples\": 1, \
                   \"metrics\": {\"k\": 3\n  ]\n}\n";
        assert!(parse_report(unterminated).is_err());
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(parse_report("").is_err());
        assert!(parse_report("not json").is_err());
        assert!(parse_report("{}").is_err(), "missing benchmarks key");
        assert!(parse_report("{\"benchmarks\": [").is_err(), "truncated");
        // An entry missing a statistic is malformed, not silently zero.
        let bad = "{\n  \"benchmarks\": [\n    {\"name\": \"x\", \"median_ns\": 5}\n  ]\n}\n";
        assert!(parse_report(bad).is_err());
        // A truncated tail after a valid entry is rejected too.
        let records = vec![BenchRecord {
            name: "x".into(),
            median_ns: 1,
            mad_ns: 1,
            min_ns: 1,
            max_ns: 1,
            samples: 1,
            metrics: Vec::new(),
        }];
        let mut text = render_report(&records);
        text.truncate(text.len() - 6);
        assert!(parse_report(&text).is_err());
    }

    #[test]
    fn benchmark_group_api_is_chainable() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1));
        let mut n = 0;
        group.bench_with_input(BenchmarkId::new("b", 7), &7, |b, &x| {
            b.iter(|| n += x);
        });
        group.finish();
        assert_eq!(n, 14);
    }
}
