//! Vendored, API-compatible stub of the subset of `criterion` used by this
//! workspace's benches: `Criterion`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no crates-registry access, so the real crate
//! cannot be fetched.  This stub runs each benchmark for the configured
//! sample count and prints median ± MAD (median absolute deviation) plus
//! min/max timings.  The median/MAD pair is robust to scheduler outliers, so
//! `cargo bench` output is comparable run-to-run — no HTML reports or
//! bootstrap analysis.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
    }
}

/// Identifier of one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark called `name` at parameter value `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores the target
    /// measurement time and always runs `sample_size` samples.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does not warm up.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F)
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().label, self.sample_size, f);
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F)
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        run_bench(&id.into().label, self.sample_size, |b| f(b, input));
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code under
/// test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, recording one sample per configured iteration.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

/// Median and median-absolute-deviation of a sample set.  The midpoint of
/// the two central elements is used for even counts.  Panics on an empty
/// slice.
pub fn median_and_mad(samples: &[Duration]) -> (Duration, Duration) {
    fn median_of(mut xs: Vec<Duration>) -> Duration {
        xs.sort_unstable();
        let mid = xs.len() / 2;
        if xs.len() % 2 == 1 {
            xs[mid]
        } else {
            (xs[mid - 1] + xs[mid]) / 2
        }
    }
    assert!(!samples.is_empty(), "median of an empty sample set");
    let median = median_of(samples.to_vec());
    let deviations = samples.iter().map(|&s| s.abs_diff(median)).collect();
    (median, median_of(deviations))
}

fn run_bench<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let (median, mad) = median_and_mad(&bencher.samples);
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "  {label}: median {median:?} ± {mad:?} MAD (min {min:?} max {max:?}, {} samples)",
        bencher.samples.len()
    );
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust_statistics() {
        let ms = Duration::from_millis;
        // Odd count: exact middle; MAD of [1,0,1,9] deviations.
        let (median, mad) = median_and_mad(&[ms(4), ms(5), ms(6), ms(14), ms(3)]);
        assert_eq!(median, ms(5));
        assert_eq!(mad, ms(1));
        // Even count: midpoint of the central pair.
        let (median, mad) = median_and_mad(&[ms(2), ms(4), ms(6), ms(8)]);
        assert_eq!(median, ms(5));
        assert_eq!(mad, ms(2));
        // A single wild outlier barely moves either statistic.
        let (median, mad) = median_and_mad(&[ms(5), ms(5), ms(5), ms(5000)]);
        assert_eq!(median, ms(5));
        assert_eq!(mad, Duration::ZERO);
        // Single sample.
        assert_eq!(median_and_mad(&[ms(7)]), (ms(7), Duration::ZERO));
    }

    #[test]
    fn bench_runs_closure_expected_number_of_times() {
        let mut calls = 0;
        run_bench("t", 4, |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_group_api_is_chainable() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1));
        let mut n = 0;
        group.bench_with_input(BenchmarkId::new("b", 7), &7, |b, &x| {
            b.iter(|| n += x);
        });
        group.finish();
        assert_eq!(n, 14);
    }
}
