//! Vendored, API-compatible stub of the `crossbeam::channel` subset used by
//! this workspace: MPMC channels with cloneable senders *and* receivers,
//! bounded/unbounded flavours, and timeout-aware receives.
//!
//! The build environment has no crates-registry access, so the real crate
//! cannot be fetched; this implementation uses a `Mutex`-guarded `VecDeque`
//! with two condition variables, which is more than adequate for the message
//! rates the simulator generates.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels (the `crossbeam-channel` API).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.  The
    /// unsent message is returned to the caller.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Create a bounded channel holding at most `cap` queued messages.
    ///
    /// Unlike real crossbeam, `bounded(0)` is treated as `bounded(1)` rather
    /// than a rendezvous channel; no call site in this workspace relies on
    /// rendezvous semantics.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Block until the message is queued (or every receiver is gone).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = self
                    .shared
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(msg);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Receivers blocked in recv must observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn pop(&self, state: &mut State<T>) -> Option<T> {
            let msg = state.queue.pop_front();
            if msg.is_some() {
                self.shared.not_full.notify_one();
            }
            msg
        }

        /// Block until a message arrives (or every sender is gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(msg) = self.pop(&mut state) {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Take a message if one is queued, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.lock();
            match self.pop(&mut state) {
                Some(msg) => Ok(msg),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives, every sender is gone, or `timeout`
        /// elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(msg) = self.pop(&mut state) {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = s;
                if result.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator over received messages; ends when every sender
        /// is gone and the queue is drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Senders blocked on a full bounded channel must observe the
                // disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_roundtrip_preserves_order() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn bounded_send_blocks_until_capacity_frees() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }

        #[test]
        fn disconnect_is_observable_on_both_halves() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());

            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
        }

        #[test]
        fn multiple_producers_and_consumers() {
            let (tx, rx) = unbounded();
            let mut handles = Vec::new();
            for p in 0..4 {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..25 {
                        tx.send(p * 100 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let rx2 = rx.clone();
            let consumer = std::thread::spawn(move || rx2.iter().count());
            let local: usize = rx.iter().count();
            let remote = consumer.join().unwrap();
            assert_eq!(local + remote, 100);
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
