//! Vendored, API-compatible stub of the subset of `proptest` used by this
//! workspace: the [`proptest!`] macro, range / `any` / `prop_oneof!` /
//! `collection::vec` strategies, and the `prop_assert*` macros.
//!
//! The build environment has no crates-registry access, so the real crate
//! cannot be fetched.  This stub samples each strategy with a deterministic
//! splitmix64 generator seeded from the test name, so failures reproduce
//! across runs; there is no shrinking.

#![warn(missing_docs)]

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic pseudo-random generator (splitmix64) used to sample
/// strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, so each property gets its own stream.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types that can be generated from raw random bits via [`any`].
pub trait Arbitrary {
    /// Generate a value from the generator.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_from_bits {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

arbitrary_from_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises NaN, infinities and subnormals.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `T` (the `any::<T>()` entry point).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy choosing uniformly between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Box a strategy for use in heterogeneous lists (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a sampled length.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: `len` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len.clone(), rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Define property tests.  Each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Property-test assertion (panics on failure; no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Strategy choice macro: uniformly picks one alternative per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(10usize..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_samples_all_arguments(
            a in 0u32..10,
            b in prop_oneof![100usize..200, 300usize..400],
            v in crate::collection::vec(any::<u8>(), 0..8),
        ) {
            prop_assert!(a < 10);
            prop_assert!((100..200).contains(&b) || (300..400).contains(&b));
            prop_assert!(v.len() < 8);
        }
    }
}
