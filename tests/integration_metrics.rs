//! Integration tests for the unified runtime metrics registry: end-to-end
//! runs must leave the counters, gauges and histograms a profiler would
//! expect — exchange frames on every participating node, per-communicator
//! collective latency histograms, plan-selection counts that reflect a
//! forced plan, and a `DCGN_METRICS` dump that parses back.
//!
//! Each test passes its own isolated [`MetricsHandle`] through
//! [`DcgnConfig::with_metrics`] so concurrently running tests cannot
//! contaminate the assertions; only the payload pool and fabric, which are
//! process-wide singletons, are checked through the global registry.

use std::collections::HashSet;
use std::time::Duration;

use dcgn::{DcgnConfig, ExchangePlan, MetricsHandle, MetricsSnapshot, ReduceOp, Runtime};

/// Total exchange frames node `node` sent, across every plan's frame kind.
fn node_exchange_frames(snap: &MetricsSnapshot, node: usize) -> u64 {
    ["up", "down", "rd", "ring"]
        .iter()
        .map(|dir| snap.counter(&format!("exchange.frames.{dir}.node{node}")))
        .sum()
}

/// A two-node allreduce must move at least one exchange frame *per node*
/// (nonzero work on both sides, not just the leader), bump each node's
/// request counter, and never push the payload pool past its capacity.
#[test]
fn two_node_allreduce_counts_frames_on_both_nodes() {
    let metrics = MetricsHandle::new();
    let config = DcgnConfig::homogeneous(2, 2, 0, 0).with_metrics(metrics.clone());
    let runtime = Runtime::new(config).unwrap();
    runtime
        .launch_cpu_only(|ctx| {
            let sum = ctx.allreduce(&[1.0, 2.0], ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![4.0, 8.0]);
        })
        .unwrap();

    let snap = metrics.snapshot();
    for node in 0..2 {
        assert!(
            snap.counter(&format!("comm.requests.node{node}")) > 0,
            "node {node} dispatched no requests: {snap:?}"
        );
        assert!(
            node_exchange_frames(&snap, node) > 0,
            "node {node} sent no exchange frames: {snap:?}"
        );
    }

    // The pool and fabric are process-wide, so their instruments live in the
    // global registry regardless of the per-job handle.
    let global = dcgn_metrics::global().snapshot();
    assert!(global.counter("fabric.frames") > 0, "no fabric traffic");
    let retained = global.gauge("pool.retained");
    assert!(
        retained.high_water <= dcgn_netsim::pool_capacity(),
        "pool retained {} buffers, capacity {}",
        retained.high_water,
        dcgn_netsim::pool_capacity()
    );
}

/// Collective latency histograms are keyed per communicator: after world
/// and subgroup allreduces, a kernel thread reading
/// [`dcgn::CpuCtx::metrics_snapshot`] must see distinct
/// `collective.latency.comm{C}...` histograms for the world and for each
/// split child, every one with samples.
#[test]
fn per_comm_latency_histograms_are_observable_from_kernels() {
    let metrics = MetricsHandle::new();
    let config = DcgnConfig::homogeneous(2, 2, 0, 0).with_metrics(metrics.clone());
    let runtime = Runtime::new(config).unwrap();
    runtime
        .launch_cpu_only(|ctx| {
            // Parity split: {0, 2} and {1, 3}, each spanning both nodes.
            let comm = ctx.comm_split((ctx.rank() % 2) as u32, 0).unwrap();
            let sub = ctx.allreduce_in(&comm, &[1.0], ReduceOp::Sum).unwrap();
            assert_eq!(sub, vec![2.0]);
            let world = ctx.allreduce(&[1.0], ReduceOp::Sum).unwrap();
            assert_eq!(world, vec![4.0]);
            // The barrier orders every rank's deliveries (latency is
            // recorded comm-thread-side before delivery) ahead of the reads.
            ctx.barrier().unwrap();

            if ctx.rank() == 0 {
                let snap = ctx.metrics_snapshot();
                let comms: HashSet<&str> = snap
                    .histograms
                    .iter()
                    .filter(|(name, stats)| {
                        name.starts_with("collective.latency.comm")
                            && name.contains(".allreduce.")
                            && stats.count > 0
                    })
                    .map(|(name, _)| name.split('.').nth(2).unwrap())
                    .collect();
                assert!(
                    comms.len() >= 3,
                    "expected world + two split children with allreduce \
                     latency samples, got {comms:?}"
                );
            }
        })
        .unwrap();
}

/// `with_exchange_plan` (the programmatic `DCGN_FORCE_PLAN`, and the one
/// that wins over the environment) must be visible in the plan-selection
/// counters, so CI's forced-plan runs can assert the override took effect.
#[test]
fn forced_plan_shows_up_in_selection_counters() {
    let metrics = MetricsHandle::new();
    let config = DcgnConfig::homogeneous(2, 1, 0, 0)
        .with_exchange_plan(ExchangePlan::Tree)
        .with_metrics(metrics.clone());
    let runtime = Runtime::new(config).unwrap();
    runtime
        .launch_cpu_only(|ctx| {
            let sum = ctx.allreduce(&[1.0], ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![2.0]);
        })
        .unwrap();

    let snap = metrics.snapshot();
    assert!(
        snap.counter_sum_by_prefix("exchange.plan.tree.") > 0,
        "forced tree plan never selected: {snap:?}"
    );
    for other in ["star", "recursive-doubling", "ring"] {
        assert_eq!(
            snap.counter_sum_by_prefix(&format!("exchange.plan.{other}.")),
            0,
            "plan {other} selected despite forced tree: {snap:?}"
        );
    }
}

/// A runtime's aggregate snapshot serializes to JSON and parses back to the
/// identical snapshot — the contract external tooling relies on.
#[test]
fn runtime_snapshot_json_roundtrips() {
    let metrics = MetricsHandle::new();
    let config = DcgnConfig::homogeneous(1, 2, 0, 0).with_metrics(metrics.clone());
    let runtime = Runtime::new(config).unwrap();
    runtime
        .launch_cpu_only(|ctx| {
            ctx.barrier().unwrap();
        })
        .unwrap();

    let snap = runtime.metrics_snapshot();
    assert!(!snap.counters.is_empty(), "barrier left no counters");
    let parsed = MetricsSnapshot::parse(&snap.to_json()).expect("dump must parse");
    assert_eq!(parsed, snap);
}

/// `DCGN_METRICS=<path>` writes a snapshot file at shutdown that
/// [`MetricsSnapshot::parse`] accepts.  A unique path keeps concurrent
/// tests (whose runtimes may also observe the variable at shutdown) from
/// clobbering anything but this file, and the read retries in case one of
/// them is mid-write.
#[test]
fn dcgn_metrics_env_file_parses() {
    let path = std::env::temp_dir().join(format!("dcgn_metrics_{}.json", std::process::id()));
    std::env::set_var("DCGN_METRICS", &path);
    let runtime = Runtime::new(DcgnConfig::homogeneous(1, 2, 0, 0)).unwrap();
    runtime
        .launch_cpu_only(|ctx| {
            let sum = ctx.allreduce(&[1.0], ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![2.0]);
        })
        .unwrap();
    std::env::remove_var("DCGN_METRICS");

    let mut parsed = None;
    for _ in 0..10 {
        if let Some(snap) = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| MetricsSnapshot::parse(&text))
        {
            parsed = Some(snap);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let snap = parsed.expect("DCGN_METRICS file must exist and parse");
    assert!(
        !snap.counters.is_empty(),
        "metrics dump carries no counters"
    );
    let _ = std::fs::remove_file(&path);
}
