//! Cross-crate integration of the nonblocking point-to-point subsystem:
//! CPU `isend`/`irecv` request handles (`wait`/`test`/`waitall`/`waitany`),
//! the GPU split publish/poll mailbox protocol (`ISEND`/`IRECV` opcodes with
//! per-request completion records), failure semantics for stale or
//! never-matched requests, and mixed blocking/nonblocking traffic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dcgn::{CostModel, DcgnConfig, DcgnError, DevicePtr, Runtime};

// ---------------------------------------------------------------------------
// CPU request handles
// ---------------------------------------------------------------------------

#[test]
fn cpu_irecv_ahead_isend_behind_roundtrip() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 0, 0)).unwrap();
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    runtime
        .launch_cpu_only(move |ctx| {
            let peer = 1 - ctx.rank();
            for round in 0..3u8 {
                // Post the receive before the matching send exists anywhere.
                let recv = ctx.irecv(peer).unwrap();
                let send = ctx.isend(peer, &[round + ctx.rank() as u8; 64]).unwrap();
                // Overlapped "compute".
                let mut acc = 0u64;
                for i in 0..5_000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                assert!(acc > 0);
                let (data, status) = ctx.wait(recv).unwrap().into_recv().unwrap();
                assert!(ctx.wait(send).unwrap().is_send());
                assert_eq!(status.source, peer);
                assert_eq!(data, vec![round + peer as u8; 64]);
            }
            h.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 2);
}

#[test]
fn cpu_test_polls_until_done_and_consumes_the_handle() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 0, 0)).unwrap();
    runtime
        .launch_cpu_only(move |ctx| {
            let peer = 1 - ctx.rank();
            let recv = ctx.irecv(peer).unwrap();
            if ctx.rank() == 0 {
                // Delay the send so rank 1 observes at least one None.
                std::thread::sleep(Duration::from_millis(5));
            }
            let send = ctx.isend(peer, b"polled").unwrap();
            let mut polls = 0u32;
            let completion = loop {
                match ctx.test(recv).unwrap() {
                    Some(done) => break done,
                    None => {
                        polls += 1;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            };
            let (data, _) = completion.into_recv().unwrap();
            assert_eq!(data, b"polled");
            ctx.wait(send).unwrap();
            // The handle was consumed by the successful test.
            assert!(matches!(ctx.test(recv), Err(DcgnError::InvalidArgument(_))));
            let _ = polls; // at least rank 1 polled > 0 times, but timing-dependent
        })
        .unwrap();
}

#[test]
fn cpu_waitall_and_waitany_over_many_requests() {
    // Rank 0 scatters tagged messages to every peer with isend + waitall;
    // each peer waits on two posted receives with waitany in whatever order
    // they complete.
    let runtime = Runtime::new(DcgnConfig::homogeneous(3, 1, 0, 0)).unwrap();
    runtime
        .launch_cpu_only(move |ctx| {
            if ctx.rank() == 0 {
                let mut handles = Vec::new();
                for peer in 1..ctx.size() {
                    for tag in 0..2u32 {
                        handles.push(
                            ctx.isend_tagged(peer, tag, &[peer as u8, tag as u8])
                                .unwrap(),
                        );
                    }
                }
                let completions = ctx.waitall(&handles).unwrap();
                assert!(completions.iter().all(|c| c.is_send()));
            } else {
                let me = ctx.rank();
                let handles = [
                    ctx.irecv_tagged(Some(0), 0).unwrap(),
                    ctx.irecv_tagged(Some(0), 1).unwrap(),
                ];
                let (first, done) = ctx.waitany(&handles).unwrap();
                let (data, _) = done.into_recv().unwrap();
                assert_eq!(data[0], me as u8);
                let other = 1 - first;
                let (data, _) = ctx.wait(handles[other]).unwrap().into_recv().unwrap();
                assert_eq!(data, vec![me as u8, other as u8]);
            }
        })
        .unwrap();
}

#[test]
fn stale_and_double_waited_handles_fail_cleanly() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 0, 0)).unwrap();
    runtime
        .launch_cpu_only(move |ctx| {
            let peer = 1 - ctx.rank();
            let recv = ctx.irecv(peer).unwrap();
            let send = ctx.isend(peer, b"x").unwrap();
            ctx.wait(recv).unwrap();
            ctx.wait(send).unwrap();
            // Both handles are consumed: every completion API rejects them
            // with a clean invalid-argument error, not a hang or a panic.
            for handle in [recv, send] {
                assert!(matches!(
                    ctx.wait(handle),
                    Err(DcgnError::InvalidArgument(_))
                ));
                assert!(matches!(
                    ctx.test(handle),
                    Err(DcgnError::InvalidArgument(_))
                ));
            }
            assert!(matches!(
                ctx.waitany(&[recv]),
                Err(DcgnError::InvalidArgument(_))
            ));
            assert!(matches!(
                ctx.waitany(&[]),
                Err(DcgnError::InvalidArgument(_))
            ));
        })
        .unwrap();
}

#[test]
fn wait_on_never_matched_irecv_surfaces_a_clean_timeout_error() {
    // Rank 0 posts a receive nothing will ever match and waits on it: the
    // wait must return an error after the request timeout — not hang the
    // kernel — and the launch (including comm-thread teardown of the orphan
    // receive) must complete.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_millis(200));
    let timed_out = Arc::new(AtomicUsize::new(0));
    let t = Arc::clone(&timed_out);
    runtime
        .launch_cpu_only(move |ctx| {
            if ctx.rank() == 0 {
                let orphan = ctx.irecv(1).unwrap();
                match ctx.wait(orphan) {
                    Err(DcgnError::Internal(msg)) => {
                        assert!(msg.contains("timed out"), "unexpected error: {msg}");
                        t.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("expected a timeout error, got {other:?}"),
                }
            }
        })
        .unwrap();
    assert_eq!(timed_out.load(Ordering::SeqCst), 1);
}

#[test]
fn abandoned_cpu_handles_do_not_hang_shutdown() {
    // Kernels post receives (and an unmatched intra-node send) they never
    // wait on, then return.  The comm thread must fail the orphans at
    // shutdown instead of hanging the launch.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
    runtime
        .launch_cpu_only(move |ctx| {
            let peer = (ctx.rank() + 1) % ctx.size();
            let _abandoned_recv = ctx.irecv(peer).unwrap();
            if ctx.rank() == 0 {
                // Intra-node send to rank 1 that is never received: its
                // deferred completion is dropped with the kernel.
                let _abandoned_send = ctx.isend(1, b"never read").unwrap();
            }
        })
        .unwrap();
}

#[test]
fn isend_in_and_irecv_in_use_sub_rank_addressing() {
    // Split 4 ranks into two pairs; partners exchange through sub-rank 0/1
    // addressing within their communicator.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
    runtime
        .launch_cpu_only(move |ctx| {
            let color = (ctx.rank() % 2) as u32;
            let comm = ctx.comm_split(color, 0).unwrap();
            assert_eq!(comm.size(), 2);
            let partner_sub = 1 - comm.rank();
            let recv = ctx.irecv_in(&comm, Some(partner_sub), 7).unwrap();
            let send = ctx
                .isend_in(&comm, partner_sub, 7, &[color as u8; 8])
                .unwrap();
            let (data, status) = ctx.wait(recv).unwrap().into_recv().unwrap();
            ctx.wait(send).unwrap();
            assert_eq!(data, vec![color as u8; 8]);
            // Status reports the partner's *global* rank.
            assert_eq!(status.source, comm.global_rank(partner_sub).unwrap());
            ctx.comm_free(&comm).unwrap();
        })
        .unwrap();
}

// ---------------------------------------------------------------------------
// GPU split publish/poll protocol
// ---------------------------------------------------------------------------

#[test]
fn gpu_isend_irecv_roundtrip_across_nodes() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 0, 1, 1)).unwrap();
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    runtime
        .launch_gpu_only(move |ctx| {
            const SLOT: usize = 0;
            if ctx.block().block_id() != 0 {
                return;
            }
            let me = ctx.rank(SLOT);
            let peer = 1 - me;
            let out = DevicePtr::NULL.add(16 * 1024);
            let inb = DevicePtr::NULL.add(24 * 1024);
            ctx.block().write(out, &[me as u8 + 10; 128]);
            // Publish both halves, compute, then collect.
            let recv = ctx.irecv(SLOT, peer, inb, 128);
            let send = ctx.isend(SLOT, peer, out, 128);
            let mut acc = 1u64;
            for i in 1..2_000u64 {
                acc = acc.wrapping_mul(i) ^ i;
            }
            assert!(acc != 0);
            let status = ctx.wait(recv);
            ctx.wait(send);
            assert_eq!(status.source, peer);
            assert_eq!(status.len, 128);
            assert_eq!(ctx.block().read_vec(inb, 128), vec![peer as u8 + 10; 128]);
            h.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 2);
}

#[test]
fn gpu_slot_overlaps_multiple_requests_in_flight() {
    // One slot publishes two sends and two receives before collecting any
    // completion: the split protocol's completion-record column (not the
    // single mailbox body) is what bounds per-slot concurrency.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 0, 1, 1)).unwrap();
    runtime
        .launch_gpu_only(move |ctx| {
            const SLOT: usize = 0;
            if ctx.block().block_id() != 0 {
                return;
            }
            let me = ctx.rank(SLOT);
            let peer = 1 - me;
            let base = DevicePtr::NULL.add(32 * 1024);
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for i in 0..2usize {
                let out = base.add(i * 1024);
                ctx.block().write(out, &[(me * 10 + i) as u8; 32]);
                recvs.push(ctx.irecv(SLOT, peer, base.add((4 + i) * 1024), 32));
                sends.push(ctx.isend(SLOT, peer, out, 32));
            }
            // Messages from one (src, tag) pair match receives in posting
            // order: receive i carries payload i.
            for (i, req) in recvs.into_iter().enumerate() {
                let status = ctx.wait(req);
                assert_eq!(status.source, peer);
                assert_eq!(
                    ctx.block().read_vec(base.add((4 + i) * 1024), 32),
                    vec![(peer * 10 + i) as u8; 32]
                );
            }
            for req in sends {
                ctx.wait(req);
            }
        })
        .unwrap();
}

#[test]
fn gpu_test_returns_none_until_complete() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(1, 1, 1, 1)).unwrap();
    // Ranks: 0 = CPU, 1 = GPU slot.
    runtime
        .launch(
            move |ctx| {
                // Hold the payload back briefly so the device sees a pending
                // request before completion.
                std::thread::sleep(Duration::from_millis(3));
                ctx.send(1, b"late payload").unwrap();
            },
            move |ctx| {
                const SLOT: usize = 0;
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(8 * 1024);
                let req = ctx.irecv(SLOT, 0, buf, 64);
                let mut spins = 0u64;
                let status = loop {
                    match ctx.test(req) {
                        Some(status) => break status,
                        None => {
                            spins += 1;
                            ctx.block().nap();
                        }
                    }
                };
                assert_eq!(status.source, 0);
                assert_eq!(ctx.block().read_vec(buf, status.len), b"late payload");
                let _ = spins; // timing-dependent, usually > 0
            },
        )
        .unwrap();
}

#[test]
fn gpu_and_cpu_mix_blocking_and_nonblocking_traffic() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    // Ranks: node0 = {0: CPU, 1: GPU}, node1 = {2: CPU, 3: GPU}.
    runtime
        .launch(
            move |ctx| match ctx.rank() {
                0 => {
                    let recv = ctx.irecv(3).unwrap();
                    ctx.send(2, b"blocking leg").unwrap();
                    let (data, _) = ctx.wait(recv).unwrap().into_recv().unwrap();
                    assert_eq!(data, b"gpu nonblocking");
                }
                2 => {
                    let (data, _) = ctx.recv(0).unwrap();
                    assert_eq!(data, b"blocking leg");
                }
                other => panic!("unexpected cpu rank {other}"),
            },
            move |ctx| {
                const SLOT: usize = 0;
                if ctx.block().block_id() != 0 {
                    return;
                }
                let scratch = DevicePtr::NULL.add(12 * 1024);
                match ctx.rank(SLOT) {
                    1 => {
                        // Blocking recv on a slot that also publishes a
                        // nonblocking send: the one-shot transaction and the
                        // split protocol share the mailbox sequentially.
                        let req = {
                            ctx.block().write(scratch, b"gpu to gpu async");
                            ctx.isend(SLOT, 3, scratch, 16)
                        };
                        ctx.wait(req);
                        let s = ctx.recv_any(SLOT, scratch.add(1024), 64);
                        assert_eq!(s.source, 3);
                    }
                    3 => {
                        let req = ctx.irecv(SLOT, 1, scratch, 64);
                        let s = ctx.wait(req);
                        assert_eq!(ctx.block().read_vec(scratch, s.len), b"gpu to gpu async");
                        ctx.block().write(scratch, b"gpu nonblocking");
                        ctx.send(SLOT, 0, scratch, 15);
                        ctx.block().write(scratch, b"ack");
                        ctx.send(SLOT, 1, scratch, 3);
                    }
                    other => panic!("unexpected gpu rank {other}"),
                }
            },
        )
        .unwrap();
}

#[test]
fn gpu_abandoned_async_request_fails_the_launch_instead_of_hanging() {
    // A device kernel publishes an irecv nothing will ever match and retires
    // without waiting.  The GPU-kernel thread must give up after its grace
    // period and fail the launch with a descriptive error.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 0, 1, 1)).unwrap();
    let result = runtime.launch_gpu_only(move |ctx| {
        const SLOT: usize = 0;
        if ctx.block().block_id() != 0 {
            return;
        }
        if ctx.rank(SLOT) == 0 {
            let _abandoned = ctx.irecv(SLOT, 1, DevicePtr::NULL.add(4096), 64);
            // Retire without waiting; rank 1 never sends.
        }
    });
    match result {
        Err(DcgnError::Internal(msg)) => {
            assert!(msg.contains("abandoned"), "unexpected message: {msg}");
        }
        other => panic!("expected an abandoned-request error, got {other:?}"),
    }
}

#[test]
fn nonblocking_roundtrip_with_realistic_costs() {
    let cfg = DcgnConfig::homogeneous(2, 1, 1, 1).with_cost(CostModel::g92_scaled(25.0));
    let runtime = Runtime::new(cfg).unwrap();
    runtime
        .launch(
            move |ctx| {
                let gpu_peer = if ctx.rank() == 0 { 1 } else { 3 };
                let recv = ctx.irecv(gpu_peer).unwrap();
                let send = ctx.isend(gpu_peer, &[0xEE; 256]).unwrap();
                let (data, _) = ctx.wait(recv).unwrap().into_recv().unwrap();
                ctx.wait(send).unwrap();
                assert_eq!(data, vec![0xDD; 256]);
            },
            move |ctx| {
                const SLOT: usize = 0;
                if ctx.block().block_id() != 0 {
                    return;
                }
                let cpu_peer = ctx.rank(SLOT) - 1;
                let buf = DevicePtr::NULL.add(64 * 1024);
                ctx.block().write(buf, &[0xDD; 256]);
                let send = ctx.isend(SLOT, cpu_peer, buf, 256);
                let recv = ctx.irecv(SLOT, cpu_peer, buf.add(4096), 256);
                ctx.wait(send);
                let s = ctx.wait(recv);
                assert_eq!(s.len, 256);
                assert_eq!(ctx.block().read_vec(buf.add(4096), 256), vec![0xEE; 256]);
            },
        )
        .unwrap();
}

#[test]
fn gpu_stale_request_faults_instead_of_hanging() {
    // Waiting on an already-harvested GpuRequest must fault with a clear
    // diagnostic (the completion word is generation-stamped), not spin
    // forever or steal a newer request's completion.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 0, 1, 1)).unwrap();
    let result = runtime.launch_gpu_only(move |ctx| {
        const SLOT: usize = 0;
        if ctx.block().block_id() != 0 {
            return;
        }
        let me = ctx.rank(SLOT);
        let peer = 1 - me;
        let buf = DevicePtr::NULL.add(4 << 20);
        ctx.block().write(buf, &[me as u8; 16]);
        let send = ctx.isend(SLOT, peer, buf, 16);
        let recv = ctx.irecv(SLOT, peer, buf.add(4096), 64);
        ctx.wait(recv);
        ctx.wait(send);
        if me == 0 {
            // Double-wait: the handle's generation no longer matches.
            ctx.wait(send);
        }
    });
    match result {
        Err(DcgnError::Device(msg)) => {
            assert!(msg.contains("stale GpuRequest"), "unexpected: {msg}");
        }
        other => panic!("expected a stale-handle fault, got {other:?}"),
    }
}

#[test]
fn gpu_publish_overrun_faults_instead_of_hanging() {
    // Publishing more than MAILBOX_REQS_PER_SLOT requests without harvesting
    // any can never make progress (records free only on the kernel's own
    // test/wait); the claim loop must fault with a descriptive message
    // instead of spinning the launch forever.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 0, 1, 1)).unwrap();
    let result = runtime.launch_gpu_only(move |ctx| {
        const SLOT: usize = 0;
        if ctx.block().block_id() != 0 {
            return;
        }
        if ctx.rank(SLOT) == 0 {
            let buf = DevicePtr::NULL.add(4 << 20);
            ctx.block().write(buf, &[7u8; 8]);
            let reqs: Vec<_> = (0..5)
                .map(|i| ctx.isend(SLOT, 1, buf.add(i * 64), 8))
                .collect();
            for req in reqs {
                ctx.wait(req);
            }
        } else {
            // Only the 4 publishes that fit the record column ever ship.
            for _ in 0..4 {
                let _ = ctx.recv_any(SLOT, DevicePtr::NULL.add(5 << 20), 64);
            }
        }
    });
    match result {
        Err(DcgnError::Device(msg)) => {
            assert!(
                msg.contains("completion record"),
                "unexpected message: {msg}"
            );
        }
        other => panic!("expected a publish-overrun fault, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Tagged GPU point-to-point and device-side waitall/waitany
// ---------------------------------------------------------------------------

#[test]
fn gpu_tagged_recv_matches_by_tag_and_any_tag_takes_the_rest() {
    // A CPU rank ships two differently-tagged messages to a GPU slot in
    // order; the kernel pulls the *second* tag first (out of arrival
    // order), then drains the remaining message with the ANY_TAG wildcard.
    let runtime = Runtime::new(DcgnConfig::homogeneous(1, 1, 1, 1)).unwrap();
    runtime
        .launch(
            |ctx| {
                if ctx.rank() == 0 {
                    // Nonblocking sends: intra-node sends complete only when
                    // matched, and the GPU matches them out of order.
                    let a = ctx.isend_tagged(1, 7, &[0xA7; 32]).unwrap();
                    let b = ctx.isend_tagged(1, 9, &[0xB9; 32]).unwrap();
                    ctx.waitall(&[a, b]).unwrap();
                }
            },
            |ctx| {
                const SLOT: usize = 0;
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(8 << 10);
                // Tag 9 first, despite the tag-7 message arriving earlier.
                let status = ctx.recv_tagged(SLOT, 0, 9, buf, 32);
                assert_eq!(status.len, 32);
                assert_eq!(ctx.block().read_vec(buf, 32), vec![0xB9; 32]);
                // The wildcard then drains the tag-7 message.
                let status = ctx.recv_any_tagged(SLOT, dcgn::gpu::ANY_TAG, buf, 32);
                assert_eq!(status.len, 32);
                assert_eq!(ctx.block().read_vec(buf, 32), vec![0xA7; 32]);
            },
        )
        .unwrap();
}

#[test]
fn gpu_any_tag_receives_report_the_senders_actual_tag() {
    // An ANY_TAG receive must report the tag the matched message actually
    // carried, on both mailbox paths: the blocking recv (result written
    // into the request body) and the nonblocking irecv + wait (result
    // written into the per-request completion record).
    let runtime = Runtime::new(DcgnConfig::homogeneous(1, 1, 1, 1)).unwrap();
    runtime
        .launch(
            |ctx| {
                if ctx.rank() == 0 {
                    let a = ctx.isend_tagged(1, 1337, &[0x11; 16]).unwrap();
                    let b = ctx.isend_tagged(1, 4242, &[0x22; 16]).unwrap();
                    ctx.waitall(&[a, b]).unwrap();
                }
            },
            |ctx| {
                const SLOT: usize = 0;
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(8 << 10);
                // Blocking wildcard receive: the body round-trips the tag.
                let status = ctx.recv_any_tagged(SLOT, dcgn::gpu::ANY_TAG, buf, 16);
                assert_eq!(status.tag, 1337);
                assert_eq!(status.len, 16);
                assert_eq!(ctx.block().read_vec(buf, 16), vec![0x11; 16]);
                // Nonblocking wildcard receive: the completion record does.
                let req = ctx.irecv_any_tagged(SLOT, dcgn::gpu::ANY_TAG, buf, 16);
                let status = ctx.wait(req);
                assert_eq!(status.tag, 4242);
                assert_eq!(status.len, 16);
                assert_eq!(ctx.block().read_vec(buf, 16), vec![0x22; 16]);
            },
        )
        .unwrap();
}

#[test]
fn gpu_nonblocking_tags_roundtrip_to_cpu_tagged_receives() {
    // The nonblocking publish path carries tags too: a GPU slot isends two
    // tagged payloads, the CPU receives them by tag in reverse order.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    runtime
        .launch(
            move |ctx| {
                // CPU ranks 0 (node 0) and 2 (node 1); GPU slots 1 and 3.
                if ctx.rank() == 0 {
                    let (low, _) = ctx.recv_tagged(Some(3), 21).unwrap();
                    assert_eq!(low, vec![21u8; 64]);
                    let (high, _) = ctx.recv_tagged(Some(3), 22).unwrap();
                    assert_eq!(high, vec![22u8; 64]);
                    h.fetch_add(1, Ordering::SeqCst);
                }
            },
            |ctx| {
                const SLOT: usize = 0;
                if ctx.block().block_id() != 0 || ctx.rank(SLOT) != 3 {
                    return;
                }
                let a = DevicePtr::NULL.add(16 << 10);
                let b = DevicePtr::NULL.add(24 << 10);
                ctx.block().write(a, &[21u8; 64]);
                ctx.block().write(b, &[22u8; 64]);
                let r1 = ctx.isend_tagged(SLOT, 0, 21, a, 64);
                let r2 = ctx.isend_tagged(SLOT, 0, 22, b, 64);
                ctx.waitall(&[r1, r2]);
            },
        )
        .unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 1);
}

#[test]
fn gpu_waitany_harvests_whichever_completes_first() {
    // The kernel posts a receive that can complete at once and one that
    // completes only after the first has been acknowledged back to the
    // peer: waitany must pick them in completion order, not posting order.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let o = Arc::clone(&order);
    runtime
        .launch(
            |ctx| {
                if ctx.rank() == 0 {
                    // First leg: satisfy the kernel's tag-5 receive.
                    ctx.send_tagged(1, 5, &[5u8; 16]).unwrap();
                    // Second leg only after the kernel acknowledged it.
                    let (ack, _) = ctx.recv(1).unwrap();
                    assert_eq!(ack, vec![0xAC; 4]);
                    ctx.send_tagged(1, 6, &[6u8; 16]).unwrap();
                }
            },
            move |ctx| {
                const SLOT: usize = 0;
                if ctx.block().block_id() != 0 || ctx.rank(SLOT) != 1 {
                    return;
                }
                let b5 = DevicePtr::NULL.add(8 << 10);
                let b6 = DevicePtr::NULL.add(12 << 10);
                let r6 = ctx.irecv_tagged(SLOT, 0, 6, b6, 16);
                let r5 = ctx.irecv_tagged(SLOT, 0, 5, b5, 16);
                // Only tag 5 has been sent: waitany must return it even
                // though r6 was posted first.
                let (idx, status) = ctx.waitany(&[r6, r5]);
                assert_eq!((idx, status.len), (1, 16));
                o.lock().push(5u32);
                // Release the second leg, then the remaining handle.
                let ack = DevicePtr::NULL.add(16 << 10);
                ctx.block().write(ack, &[0xAC; 4]);
                ctx.send(SLOT, 0, ack, 4);
                let (idx, status) = ctx.waitany(&[r6]);
                assert_eq!((idx, status.len), (0, 16));
                o.lock().push(6u32);
                assert_eq!(ctx.block().read_vec(b5, 16), vec![5u8; 16]);
                assert_eq!(ctx.block().read_vec(b6, 16), vec![6u8; 16]);
            },
        )
        .unwrap();
    assert_eq!(*order.lock(), vec![5, 6]);
}
