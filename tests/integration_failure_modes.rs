//! Failure injection and edge-of-envelope configurations: the runtime must
//! fail loudly (never hang, never silently corrupt) when applications misuse
//! it or when configurations are extreme.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dcgn::{
    CostModel, DcgnConfig, DcgnError, DeviceConfig, DevicePtr, ExchangePlan, NodeConfig, Runtime,
};

/// Run `f` on a watchdog thread and fail the test if it has not returned
/// within `timeout` — the guard that turns a silent hang into a loud
/// failure.  (On timeout the worker thread leaks; the test is failing
/// anyway.)
fn with_timeout<T: Send + 'static>(timeout: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(timeout)
        .expect("launch exceeded the watchdog timeout — collective containment hung")
}

#[test]
fn invalid_configurations_are_rejected_before_launch() {
    assert!(Runtime::new(DcgnConfig::heterogeneous(vec![])).is_err());
    assert!(Runtime::new(DcgnConfig::homogeneous(3, 0, 0, 0)).is_err());
    assert!(Runtime::new(DcgnConfig::heterogeneous(vec![NodeConfig::new(0, 2, 0)])).is_err());
    // More slots than resident blocks on the device.
    let tiny_device = DeviceConfig::default().with_multiprocessors(1);
    assert!(Runtime::new(DcgnConfig::heterogeneous(vec![
        NodeConfig::new(0, 1, 4).with_device(tiny_device)
    ]))
    .is_err());
}

#[test]
fn send_to_nonexistent_rank_reports_error_not_hang() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(1, 2, 0, 0)).unwrap();
    runtime
        .launch_cpu_only(|ctx| {
            assert!(matches!(
                ctx.send(17, b"nope"),
                Err(DcgnError::InvalidRank(17))
            ));
        })
        .unwrap();
}

#[test]
fn mismatched_collectives_are_detected() {
    // Rank 0 enters a barrier while rank 1 enters a broadcast: the node's
    // comm thread reports the mismatch to the second participant.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 2, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(3));
    let result = runtime.launch_cpu_only(|ctx| {
        // Whichever rank joins second sees the mismatch immediately; the
        // first joiner's collective can never complete and times out.  Both
        // must observe an error — and the job must terminate.
        if ctx.rank() == 0 {
            assert!(ctx.barrier().is_err());
        } else {
            let mut data = vec![1u8];
            assert!(ctx.broadcast(1, &mut data).is_err());
        }
    });
    result.unwrap();
}

#[test]
fn subgroup_reduce_mismatch_fails_only_that_subgroup() {
    // Odd ranks run an allreduce with disagreeing vector lengths inside
    // their own communicator: both odd ranks must observe the error, the
    // even ranks' concurrent subgroup collective must succeed, and world
    // collectives must still work afterwards.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 4, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(10));
    runtime
        .launch_cpu_only(|ctx| {
            let rank = ctx.rank();
            let comm = ctx.comm_split((rank % 2) as u32, 0).unwrap();
            if rank % 2 == 1 {
                // Rank 1 contributes 3 values, rank 3 contributes 5.
                let data = vec![1.0; if rank == 1 { 3 } else { 5 }];
                let err = ctx
                    .allreduce_in(&comm, &data, dcgn::ReduceOp::Sum)
                    .unwrap_err();
                assert!(
                    matches!(err, DcgnError::InvalidArgument(_)),
                    "want InvalidArgument, got {err:?}"
                );
            } else {
                let sum = ctx
                    .allreduce_in(&comm, &[1.0], dcgn::ReduceOp::Sum)
                    .unwrap();
                assert_eq!(sum, vec![2.0]);
            }
            // The failure is contained: the world is unaffected.
            let sum = ctx.allreduce(&[1.0], dcgn::ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![4.0]);
            ctx.barrier().unwrap();
        })
        .unwrap();
}

#[test]
fn cross_node_subgroup_mismatch_is_contained() {
    // The mismatching subgroup spans two nodes, so no single node can see
    // the mismatch locally: the leader detects it during the combine and
    // echoes the error to every participating node — unlike erroneous world
    // collectives, nobody hangs in the substrate.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(10));
    runtime
        .launch_cpu_only(|ctx| {
            let rank = ctx.rank();
            // Parity groups: {0, 2} and {1, 3} each span both nodes.
            let comm = ctx.comm_split((rank % 2) as u32, 0).unwrap();
            if rank % 2 == 1 {
                let data = vec![1.0; if rank == 1 { 3 } else { 5 }];
                let err = ctx
                    .allreduce_in(&comm, &data, dcgn::ReduceOp::Sum)
                    .unwrap_err();
                assert!(matches!(err, DcgnError::InvalidArgument(_)));
            } else {
                let sum = ctx
                    .allreduce_in(&comm, &[2.0], dcgn::ReduceOp::Sum)
                    .unwrap();
                assert_eq!(sum, vec![4.0]);
            }
            ctx.barrier().unwrap();
        })
        .unwrap();
}

/// World allreduce where the ranks of `bad_node` contribute mismatched
/// vector lengths: every rank of every node must observe a clean error —
/// world collectives ride the same exchange engine as subgroups, so the
/// aborting node's error up-frame is echoed to every peer instead of
/// leaving them blocked inside a substrate exchange.
fn world_length_mismatch_all_ranks_error(nodes: usize, cpus_per_node: usize) {
    let errors = Arc::new(AtomicUsize::new(0));
    let e = Arc::clone(&errors);
    let total = nodes * cpus_per_node;
    with_timeout(Duration::from_secs(60), move || {
        let mut runtime =
            Runtime::new(DcgnConfig::homogeneous(nodes, cpus_per_node, 0, 0)).unwrap();
        runtime.set_request_timeout(Duration::from_secs(20));
        runtime
            .launch_cpu_only(move |ctx| {
                // Node 0's ranks disagree among themselves (1 vs 3 values);
                // every other node's ranks agree with each other.
                let len = if ctx.node() == 0 && ctx.rank() % 2 == 1 {
                    3
                } else {
                    1
                };
                let err = ctx
                    .allreduce(&vec![1.0; len], dcgn::ReduceOp::Sum)
                    .unwrap_err();
                assert!(
                    matches!(err, DcgnError::InvalidArgument(_)),
                    "want InvalidArgument on rank {}, got {err:?}",
                    ctx.rank()
                );
                e.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
    });
    assert_eq!(
        errors.load(Ordering::SeqCst),
        total,
        "every rank must error"
    );
}

#[test]
fn world_reduce_length_mismatch_errors_on_every_rank_single_node() {
    world_length_mismatch_all_ranks_error(1, 2);
}

#[test]
fn world_reduce_length_mismatch_errors_on_every_node() {
    // The decisive case the old blocking substrate path could not handle:
    // node 1's ranks are blameless, yet they must *error* (not hang) when
    // node 0 aborts the world collective locally.
    world_length_mismatch_all_ranks_error(2, 2);
}

#[test]
fn world_reduce_length_mismatch_errors_on_three_nodes() {
    world_length_mismatch_all_ranks_error(3, 2);
}

#[test]
fn world_dtype_mismatch_aborts_every_node_without_timeout() {
    // Node 0's two ranks join the same world reduce with different element
    // types.  The join detects the identity mismatch, fails *both* local
    // ranks immediately (not just the late joiner), and echoes the abort
    // through the exchange so node 1's blameless ranks error out too —
    // nobody waits for a request timeout.
    let errors = Arc::new(AtomicUsize::new(0));
    let e = Arc::clone(&errors);
    with_timeout(Duration::from_secs(60), move || {
        let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
        runtime.set_request_timeout(Duration::from_secs(20));
        runtime
            .launch_cpu_only(move |ctx| {
                let outcome = if ctx.node() == 0 && ctx.rank() % 2 == 1 {
                    ctx.allreduce_t::<f32>(&[1.0], dcgn::ReduceOp::Sum)
                        .map(|_| ())
                } else {
                    ctx.allreduce_t::<f64>(&[1.0], dcgn::ReduceOp::Sum)
                        .map(|_| ())
                };
                match outcome {
                    Err(DcgnError::CollectiveMismatch { .. } | DcgnError::InvalidArgument(_)) => {
                        e.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!(
                        "rank {}: expected a mismatch error, got {other:?}",
                        ctx.rank()
                    ),
                }
            })
            .unwrap();
    });
    assert_eq!(errors.load(Ordering::SeqCst), 4, "every rank must error");
}

#[test]
fn world_kind_mismatch_across_nodes_is_a_collective_mismatch_everywhere() {
    // Whole nodes disagree about *which* world collective runs: node 0
    // enters a barrier, node 1 an allreduce.  No single node can see the
    // mismatch locally; the leader detects it from the collective identity
    // carried inside the up-frames and echoes CollectiveMismatch to every
    // participant.
    let errors = Arc::new(AtomicUsize::new(0));
    let e = Arc::clone(&errors);
    with_timeout(Duration::from_secs(60), move || {
        let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
        runtime.set_request_timeout(Duration::from_secs(20));
        runtime
            .launch_cpu_only(move |ctx| {
                let outcome = if ctx.node() == 0 {
                    ctx.barrier()
                } else {
                    ctx.allreduce(&[1.0], dcgn::ReduceOp::Sum).map(|_| ())
                };
                match outcome {
                    Err(DcgnError::CollectiveMismatch {
                        in_progress,
                        requested,
                    }) => {
                        let pair = [in_progress, requested];
                        assert!(pair.contains(&"barrier") && pair.contains(&"allreduce"));
                        e.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!(
                        "rank {}: expected CollectiveMismatch, got {other:?}",
                        ctx.rank()
                    ),
                }
            })
            .unwrap();
    });
    assert_eq!(errors.load(Ordering::SeqCst), 4, "every rank must error");
}

#[test]
fn tree_plan_kind_mismatch_at_32_nodes_is_contained() {
    // Failure containment must survive the tree plan at scale: with 32
    // nodes forced onto the binomial tree, node 0 (the root) enters a
    // barrier while every other node enters an allreduce.  The mismatch is
    // caught from the collective identity carried in the up-bundles —
    // possibly at an interior node, before the root ever sees it — and the
    // abort must still reach all 32 ranks instead of deadlocking a subtree.
    let errors = Arc::new(AtomicUsize::new(0));
    let e = Arc::clone(&errors);
    with_timeout(Duration::from_secs(120), move || {
        let mut runtime = Runtime::new(
            DcgnConfig::homogeneous(32, 1, 0, 0).with_exchange_plan(ExchangePlan::Tree),
        )
        .unwrap();
        runtime.set_request_timeout(Duration::from_secs(30));
        runtime
            .launch_cpu_only(move |ctx| {
                let outcome = if ctx.node() == 0 {
                    ctx.barrier()
                } else {
                    ctx.allreduce(&[1.0], dcgn::ReduceOp::Sum).map(|_| ())
                };
                match outcome {
                    Err(DcgnError::CollectiveMismatch {
                        in_progress,
                        requested,
                    }) => {
                        let pair = [in_progress, requested];
                        assert!(pair.contains(&"barrier") && pair.contains(&"allreduce"));
                        e.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!(
                        "rank {}: expected CollectiveMismatch, got {other:?}",
                        ctx.rank()
                    ),
                }
            })
            .unwrap();
    });
    assert_eq!(errors.load(Ordering::SeqCst), 32, "every rank must error");
}

#[test]
fn tree_plan_length_mismatch_at_32_nodes_errors_on_every_rank() {
    // Mid-collective error echo down the tree: the root's combine rejects
    // the mismatched vector lengths only after every up-bundle has been
    // concatenated up the tree, so the resulting error frame must be
    // relayed verbatim through the interior nodes to all 32 ranks.
    let errors = Arc::new(AtomicUsize::new(0));
    let e = Arc::clone(&errors);
    with_timeout(Duration::from_secs(120), move || {
        let mut runtime = Runtime::new(
            DcgnConfig::homogeneous(32, 1, 0, 0).with_exchange_plan(ExchangePlan::Tree),
        )
        .unwrap();
        runtime.set_request_timeout(Duration::from_secs(30));
        runtime
            .launch_cpu_only(move |ctx| {
                // Node 5 is an interior node of the 32-node binomial tree;
                // its contribution disagrees with everyone else's.
                let len = if ctx.node() == 5 { 3 } else { 1 };
                let err = ctx
                    .allreduce(&vec![1.0; len], dcgn::ReduceOp::Sum)
                    .unwrap_err();
                assert!(
                    matches!(err, DcgnError::InvalidArgument(_)),
                    "want InvalidArgument on rank {}, got {err:?}",
                    ctx.rank()
                );
                e.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
    });
    assert_eq!(errors.load(Ordering::SeqCst), 32, "every rank must error");
}

#[test]
fn rd_and_ring_length_mismatch_is_contained_at_32_nodes() {
    // The allreduce schedules have no single combining root: a recursive-
    // doubling partner (or a ring neighbour) discovers the length
    // disagreement mid-schedule, and its abort broadcast must reach all 32
    // nodes — including ones that were still happily folding.
    for plan in [ExchangePlan::RecursiveDoubling, ExchangePlan::Ring] {
        let errors = Arc::new(AtomicUsize::new(0));
        let e = Arc::clone(&errors);
        with_timeout(Duration::from_secs(120), move || {
            let mut runtime =
                Runtime::new(DcgnConfig::homogeneous(32, 1, 0, 0).with_exchange_plan(plan))
                    .unwrap();
            runtime.set_request_timeout(Duration::from_secs(30));
            runtime
                .launch_cpu_only(move |ctx| {
                    let len = if ctx.node() == 7 { 5 } else { 8 };
                    let err = ctx
                        .allreduce(&vec![1.0; len], dcgn::ReduceOp::Sum)
                        .unwrap_err();
                    assert!(
                        matches!(err, DcgnError::InvalidArgument(_)),
                        "want InvalidArgument on rank {} under {plan:?}, got {err:?}",
                        ctx.rank()
                    );
                    e.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        });
        assert_eq!(
            errors.load(Ordering::SeqCst),
            32,
            "every rank must error under {plan:?}"
        );
    }
}

#[test]
fn world_collectives_still_work_after_a_contained_failure() {
    // A failed world collective must not poison the engine: the very next
    // world collective on the same communicator succeeds on every node.
    with_timeout(Duration::from_secs(60), move || {
        let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
        runtime.set_request_timeout(Duration::from_secs(20));
        runtime
            .launch_cpu_only(|ctx| {
                let len = if ctx.rank() == 0 { 2 } else { 1 };
                assert!(ctx.allreduce(&vec![1.0; len], dcgn::ReduceOp::Sum).is_err());
                // Everyone agrees again: the engine recovers.
                let sum = ctx.allreduce(&[1.0], dcgn::ReduceOp::Sum).unwrap();
                assert_eq!(sum, vec![4.0]);
                ctx.barrier().unwrap();
            })
            .unwrap();
    });
}

#[test]
fn mailbox_depth_one_overrun_faults_instead_of_deadlocking() {
    // At the configured minimum depth of one completion record, publishing a
    // second nonblocking request without harvesting the first can never
    // make progress; the claim loop must fault the launch, not deadlock it.
    let runtime = Runtime::new(DcgnConfig::homogeneous(1, 0, 1, 2).with_mailbox_depth(1)).unwrap();
    let result = with_timeout(Duration::from_secs(60), move || {
        runtime.launch_gpu_only(move |ctx| {
            match ctx.block().block_id() {
                0 => {
                    let buf = DevicePtr::NULL.add(1 << 20);
                    ctx.block().write(buf, &[1u8; 8]);
                    let first = ctx.isend(0, 1, buf, 8);
                    // Depth 1: this second publish can never claim a record.
                    let second = ctx.isend(0, 1, buf.add(64), 8);
                    ctx.wait(first);
                    ctx.wait(second);
                }
                1 => {
                    let _ = ctx.recv_any(1, DevicePtr::NULL.add(2 << 20), 64);
                }
                _ => {}
            }
        })
    });
    match result {
        Err(DcgnError::Device(msg)) => {
            assert!(msg.contains("completion record"), "unexpected: {msg}");
        }
        other => panic!("expected a depth-overrun fault, got {other:?}"),
    }
}

#[test]
fn mailbox_depth_one_sequential_nonblocking_traffic_works() {
    // Depth 1 is a legal configuration: publish → wait → publish → wait
    // never needs a second record in flight.
    with_timeout(Duration::from_secs(60), move || {
        let runtime =
            Runtime::new(DcgnConfig::homogeneous(1, 1, 1, 1).with_mailbox_depth(1)).unwrap();
        runtime
            .launch(
                |ctx| {
                    if ctx.rank() == 0 {
                        for i in 0..3u8 {
                            ctx.send(1, &[i; 16]).unwrap();
                        }
                    }
                },
                |ctx| {
                    const SLOT: usize = 0;
                    if ctx.block().block_id() != 0 {
                        return;
                    }
                    let buf = DevicePtr::NULL.add(8 << 10);
                    for i in 0..3u8 {
                        let req = ctx.irecv(SLOT, 0, buf, 16);
                        let status = ctx.wait(req);
                        assert_eq!(status.len, 16);
                        let mut got = [0u8; 16];
                        ctx.block().read(buf, &mut got);
                        assert_eq!(got, [i; 16]);
                    }
                },
            )
            .unwrap();
    });
}

#[test]
fn zero_mailbox_depth_is_rejected() {
    assert!(Runtime::new(DcgnConfig::homogeneous(1, 0, 1, 1).with_mailbox_depth(0)).is_err());
}

#[test]
fn collective_on_unknown_communicator_is_rejected() {
    // A handle this node's comm thread has never registered must fail the
    // request instead of assembling forever.  Constructing one without a
    // split is only possible by splitting inside a *different* launch, so
    // fake it with a sub-rank root that is out of range instead: roots are
    // validated against the communicator's size, not the world's.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 4, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(10));
    runtime
        .launch_cpu_only(|ctx| {
            let comm = ctx.comm_split((ctx.rank() % 2) as u32, 0).unwrap();
            assert_eq!(comm.size(), 2);
            let err = ctx.reduce_in(&comm, 2, &[1.0], dcgn::ReduceOp::Sum);
            assert!(matches!(err, Err(DcgnError::InvalidRank(2))));
            ctx.barrier().unwrap();
        })
        .unwrap();
}

#[test]
fn receive_that_never_matches_times_out() {
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 1, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_millis(300));
    let result = runtime.launch_cpu_only(|ctx| {
        // Nobody ever sends to us.
        let err = ctx.recv_any().unwrap_err();
        assert!(matches!(
            err,
            DcgnError::Internal(_) | DcgnError::ShuttingDown
        ));
    });
    // The kernel handled the error itself, so the launch succeeds.
    result.unwrap();
}

#[test]
fn kernel_panic_is_reported_as_launch_error() {
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 1, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(2));
    let result = runtime.launch_cpu_only(|_ctx| {
        panic!("application bug");
    });
    match result {
        Err(DcgnError::Internal(msg)) => assert!(msg.contains("application bug")),
        other => panic!("expected an internal error, got {other:?}"),
    }
}

#[test]
fn gpu_kernel_fault_is_reported_as_launch_error() {
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 0, 1, 1)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(2));
    let result = runtime.launch_gpu_only(|ctx| {
        if ctx.block().block_id() == 0 {
            // Out-of-bounds device access faults the block.
            let bad = DevicePtr::NULL.add(usize::MAX / 2);
            ctx.block().read_u32(bad);
        }
    });
    assert!(result.is_err());
}

#[test]
fn truncated_gpu_receive_surfaces_as_device_fault() {
    // The receiving buffer on the device is smaller than the message: the
    // mailbox completion carries a truncation error and the kernel panics
    // with a device fault, which the launch reports.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 1, 1, 1)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(5));
    let result = runtime.launch(
        |ctx| {
            if ctx.rank() == 0 {
                let _ = ctx.send(1, &[1u8; 256]);
            }
        },
        |ctx| {
            if ctx.block().block_id() != 0 {
                return;
            }
            let buf = DevicePtr::NULL.add(4096);
            // Only willing to accept 16 bytes.
            ctx.recv(0, 0, buf, 16);
        },
    );
    assert!(result.is_err());
}

#[test]
fn zero_cost_and_scaled_cost_models_agree_on_results() {
    // The cost model only affects timing, never results.
    let run = |cost: CostModel| {
        let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 0, 0).with_cost(cost)).unwrap();
        let out = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o = std::sync::Arc::clone(&out);
        runtime
            .launch_cpu_only(move |ctx| {
                let mut data = if ctx.rank() == 0 {
                    vec![42u8; 100]
                } else {
                    Vec::new()
                };
                ctx.broadcast(0, &mut data).unwrap();
                o.lock().push(data);
            })
            .unwrap();
        let v = out.lock().clone();
        v
    };
    assert_eq!(run(CostModel::zero()), run(CostModel::g92_scaled(100.0)));
}

#[test]
fn extreme_polling_intervals_still_complete() {
    // A very coarse polling interval makes GPU messages slow but must not
    // break correctness.
    let cfg = DcgnConfig::homogeneous(1, 1, 1, 1).with_poll_interval(Duration::from_millis(20));
    let runtime = Runtime::new(cfg).unwrap();
    runtime
        .launch(
            |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, b"slow poll").unwrap();
                    let (reply, _) = ctx.recv(1).unwrap();
                    assert_eq!(reply, b"ok");
                }
            },
            |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(2048);
                let s = ctx.recv(0, 0, buf, 64);
                assert_eq!(s.len, 9);
                ctx.block().write(buf, b"ok");
                ctx.send(0, 0, buf, 2);
            },
        )
        .unwrap();
}
