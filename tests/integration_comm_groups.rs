//! Communicator-group integration tests: disjoint communicators must be able
//! to execute collectives *concurrently* — the scalability gap the old
//! single-`active_collective`-slot comm thread had, where the second group's
//! join was rejected as a collective mismatch.

use std::time::Duration;

use dcgn::{Comm, CpuCtx, DcgnConfig, DevicePtr, ReduceOp, Runtime};

fn split_by_parity(ctx: &CpuCtx) -> Comm {
    ctx.comm_split((ctx.rank() % 2) as u32, 0).unwrap()
}

/// Group A (even ranks) holds a barrier open while group B (odd ranks) runs
/// a complete allreduce: rank 2 only joins A's barrier after receiving a
/// message rank 1 sends *after* B's allreduce finished.  Under the old
/// single-slot design B's join errored out while A was assembling; now both
/// groups proceed independently.
fn interleaved_kernel(ctx: &CpuCtx) {
    let comm = split_by_parity(ctx);
    match ctx.rank() {
        0 => ctx.barrier_in(&comm).unwrap(),
        2 => {
            // Gate: B's allreduce provably completes while A's barrier is
            // still half-assembled (rank 0 joined, this rank has not).
            let (msg, _) = ctx.recv(1).unwrap();
            assert_eq!(msg, b"b-done");
            ctx.barrier_in(&comm).unwrap();
        }
        1 => {
            let sum = ctx.allreduce_in(&comm, &[1.0], ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![2.0]);
            ctx.send(2, b"b-done").unwrap();
        }
        3 => {
            let sum = ctx.allreduce_in(&comm, &[1.0], ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![2.0]);
        }
        r => unreachable!("unexpected rank {r}"),
    }
    // Follow-up rounds with *different* collective counts per group — there
    // must be no ordering dependency between the groups.
    if ctx.rank().is_multiple_of(2) {
        for _ in 0..3 {
            ctx.barrier_in(&comm).unwrap();
        }
        let chunks = ctx.allgather_in(&comm, &[ctx.rank() as u8]).unwrap();
        let want: Vec<Vec<u8>> = comm.members().iter().map(|&m| vec![m as u8]).collect();
        assert_eq!(chunks, want);
    } else {
        for round in 0..2 {
            let sum = ctx
                .allreduce_in(&comm, &[round as f64, 1.0], ReduceOp::Sum)
                .unwrap();
            assert_eq!(sum, vec![2.0 * round as f64, 2.0]);
        }
    }
    // And the world is still intact afterwards.
    let total = ctx.size() as f64;
    let sum = ctx.allreduce(&[1.0], ReduceOp::Sum).unwrap();
    assert_eq!(sum, vec![total]);
}

#[test]
fn disjoint_groups_interleave_collectives_on_one_node() {
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 4, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(20));
    runtime.launch_cpu_only(interleaved_kernel).unwrap();
}

#[test]
fn disjoint_groups_interleave_collectives_across_nodes() {
    // Ranks 0,1 on node 0 and 2,3 on node 1: both parity groups span both
    // nodes, so their exchanges overlap in the substrate as well.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(20));
    runtime.launch_cpu_only(interleaved_kernel).unwrap();
}

/// Nested splits: a subgroup is itself split further with `comm_split_in`,
/// and collectives run correctly at every level.  Rank count scales with
/// `DCGN_TEST_RANKS` so CI exercises >2 colors.
#[test]
fn nested_splits_partition_subgroups() {
    let ranks: usize = std::env::var("DCGN_TEST_RANKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
        .max(4);
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, ranks.div_ceil(2), 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(30));
    runtime
        .launch_cpu_only(move |ctx| {
            let total = ctx.size();
            let rank = ctx.rank();
            // Level 1: three color classes (keys constant → rank order).
            let child = ctx.comm_split((rank % 3) as u32, 0).unwrap();
            let want: Vec<usize> = (0..total).filter(|r| r % 3 == rank % 3).collect();
            assert_eq!(child.members(), want, "level-1 members");
            // Level 2: halve each class by sub-rank parity.
            let grand = ctx
                .comm_split_in(&child, (child.rank() % 2) as u32, 0)
                .unwrap();
            let want: Vec<usize> = child
                .members()
                .iter()
                .enumerate()
                .filter(|(s, _)| s % 2 == child.rank() % 2)
                .map(|(_, &m)| m)
                .collect();
            assert_eq!(grand.members(), want, "level-2 members");
            // A collective at every level, innermost first.
            let sum = ctx.allreduce_in(&grand, &[1.0], ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![grand.size() as f64]);
            let sum = ctx.allreduce_in(&child, &[1.0], ReduceOp::Sum).unwrap();
            assert_eq!(sum, vec![child.size() as f64]);
            ctx.barrier().unwrap();
        })
        .unwrap();
}

/// GPU slots split through the mailbox path and the two resulting groups run
/// *different* collectives concurrently (one barriers, one allreduces).
#[test]
fn gpu_subgroups_run_different_collectives() {
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 0, 1, 4)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(20));
    runtime
        .launch_gpu_only(|ctx| {
            let slot = ctx.slot_for_block();
            if ctx.block().block_id() >= ctx.slots() {
                return;
            }
            let rank = ctx.rank(slot);
            let b = ctx.block();
            let base = DevicePtr::NULL.add((4 + slot * 4) << 20);
            let comm = ctx.split(slot, (rank % 2) as u32, 0, base, 16 + 4 * ctx.size());
            assert_eq!(comm.size, 2);
            assert_eq!(comm.rank, rank / 2);
            assert_eq!(ctx.comm_member(&comm, comm.rank), rank);
            // World handles map sub-ranks to global ranks by identity.
            assert_eq!(ctx.comm_member(&ctx.world_comm(slot), rank), rank);
            if rank.is_multiple_of(2) {
                ctx.barrier_in(slot, &comm);
                ctx.barrier_in(slot, &comm);
            } else {
                let buf = base.add(64 << 10);
                b.write(buf, &1.0f64.to_le_bytes());
                let got = ctx.allreduce_in(slot, &comm, ReduceOp::Sum, buf, 1);
                assert_eq!(got, 8);
                assert_eq!(b.read_vec(buf, 8), 2.0f64.to_le_bytes());
            }
            // The world barrier still spans both groups.
            ctx.barrier(slot);
        })
        .unwrap();
}

/// `comm_free` lifecycle: freed groups are evicted from the comm thread's
/// registry (the table no longer grows monotonically with splits), later use
/// of a freed id fails cleanly, and re-splitting works.
fn comm_free_kernel(ctx: &CpuCtx) {
    // The world communicator cannot be freed.
    let world = ctx.world_comm();
    assert!(ctx.comm_free(&world).is_err());
    for _ in 0..3 {
        let comm = ctx.comm_split((ctx.rank() % 2) as u32, 0).unwrap();
        let sum = ctx.allreduce_in(&comm, &[1.0], ReduceOp::Sum).unwrap();
        assert_eq!(sum, vec![comm.size() as f64]);
        // World barrier: nobody frees while a peer's subgroup collective
        // might still be in flight.
        ctx.barrier().unwrap();
        ctx.comm_free(&comm).unwrap();
        // Second barrier: every local member has freed, so the group is
        // evicted everywhere before anyone probes it.
        ctx.barrier().unwrap();
        let err = ctx.barrier_in(&comm).unwrap_err();
        assert!(
            err.to_string().contains("unknown communicator"),
            "stale use must name the unknown communicator, got: {err}"
        );
        assert!(ctx.comm_free(&comm).is_err(), "double free must fail");
    }
}

#[test]
fn comm_free_evicts_groups_and_allows_reuse() {
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 4, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(20));
    runtime.launch_cpu_only(comm_free_kernel).unwrap();
}

#[test]
fn comm_free_evicts_independently_per_node() {
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(20));
    runtime.launch_cpu_only(comm_free_kernel).unwrap();
}

/// GPU slots release a split group through the mailbox `FREE` opcode and can
/// split again afterwards.
#[test]
fn gpu_comm_free_releases_groups() {
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 0, 1, 2)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(20));
    runtime
        .launch_gpu_only(|ctx| {
            let slot = ctx.slot_for_block();
            if ctx.block().block_id() >= ctx.slots() {
                return;
            }
            let base = DevicePtr::NULL.add((4 + slot * 4) << 20);
            let table_len = 16 + 4 * ctx.size();
            let comm = ctx.split(slot, 0, 0, base, table_len);
            assert_eq!(comm.size, 2);
            ctx.barrier_in(slot, &comm);
            // Make sure no subgroup collective is still in flight anywhere
            // before releasing the handle.
            ctx.barrier(slot);
            ctx.comm_free(slot, &comm);
            ctx.barrier(slot);
            // The registry slot is gone; a fresh split works and gets a
            // distinct id.
            let comm2 = ctx.split(slot, 0, 0, base, table_len);
            assert_ne!(comm2.id, comm.id);
            ctx.barrier_in(slot, &comm2);
            ctx.comm_free(slot, &comm2);
        })
        .unwrap();
}

/// Freeing is per-rank and immediate: before the group is evicted (peers
/// still hold handles), a rank that freed can neither free again nor keep
/// using the communicator.
#[test]
fn comm_free_is_per_rank_before_eviction() {
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 2, 0, 0)).unwrap();
    runtime.set_request_timeout(Duration::from_secs(20));
    runtime
        .launch_cpu_only(|ctx| {
            let comm = ctx.comm_split(0, 0).unwrap();
            if ctx.rank() == 0 {
                ctx.comm_free(&comm).unwrap();
                // Rank 1 still holds its handle, so the group is not yet
                // evicted — but this rank's handle is gone.
                let err = ctx.comm_free(&comm).unwrap_err();
                assert!(err.to_string().contains("already freed"), "got: {err}");
                let err = ctx.barrier_in(&comm).unwrap_err();
                assert!(err.to_string().contains("already freed"), "got: {err}");
                ctx.send(1, b"freed-twice-checked").unwrap();
            } else {
                let (msg, _) = ctx.recv(0).unwrap();
                assert_eq!(msg, b"freed-twice-checked");
                ctx.comm_free(&comm).unwrap();
            }
        })
        .unwrap();
}
