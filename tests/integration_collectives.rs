//! Cross-crate integration: DCGN collectives spanning CPU ranks and GPU
//! slots on multiple nodes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dcgn::{DcgnConfig, DevicePtr, Runtime};
use parking_lot::Mutex;

#[test]
fn barrier_over_mixed_ranks_and_nodes() {
    // 2 nodes x (1 CPU + 1 GPU slot): 4 ranks of two kinds.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let counter = Arc::new(AtomicUsize::new(0));
    let (c_cpu, c_gpu) = (Arc::clone(&counter), Arc::clone(&counter));
    runtime
        .launch(
            move |ctx| {
                c_cpu.fetch_add(1, Ordering::SeqCst);
                ctx.barrier().unwrap();
                assert_eq!(c_cpu.load(Ordering::SeqCst), 4);
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                c_gpu.fetch_add(1, Ordering::SeqCst);
                ctx.barrier(0);
                assert_eq!(c_gpu.load(Ordering::SeqCst), 4);
            },
        )
        .unwrap();
}

#[test]
fn broadcast_cpu_root_reaches_gpu_slots() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let payload: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
    let expected_cpu = payload.clone();
    let expected_gpu = payload.clone();
    let seen = Arc::new(AtomicUsize::new(0));
    let (seen_cpu, seen_gpu) = (Arc::clone(&seen), Arc::clone(&seen));
    runtime
        .launch(
            move |ctx| {
                let mut data = if ctx.rank() == 0 { payload.clone() } else { Vec::new() };
                ctx.broadcast(0, &mut data).unwrap();
                assert_eq!(data, expected_cpu);
                seen_cpu.fetch_add(1, Ordering::SeqCst);
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(8 * 1024);
                let got = ctx.broadcast(0, 0, buf, 512);
                assert_eq!(got, 512);
                assert_eq!(ctx.block().read_vec(buf, 512), expected_gpu);
                seen_gpu.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();
    assert_eq!(seen.load(Ordering::SeqCst), 4);
}

#[test]
fn incomplete_collective_fails_rather_than_hanging() {
    // A gather in which the GPU slots never join must NOT complete: the
    // launch reports an error (the CPU ranks time out / are failed at
    // shutdown) instead of silently succeeding or deadlocking.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    runtime.set_request_timeout(std::time::Duration::from_secs(2));
    let gathered = Arc::new(Mutex::new(None));
    let g = Arc::clone(&gathered);
    let result = runtime.launch(
        move |ctx| {
            let mine = vec![ctx.rank() as u8; 3];
            let out = ctx.gather(0, &mine).expect("gather should fail, not succeed");
            if ctx.rank() == 0 {
                *g.lock() = out;
            }
        },
        move |_ctx| {
            // GPU slots intentionally never join the collective.
        },
    );
    assert!(result.is_err());
    assert!(gathered.lock().is_none());
}

#[test]
fn gather_with_cpu_only_ranks_completes() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
    let gathered = Arc::new(Mutex::new(None));
    let g = Arc::clone(&gathered);
    runtime
        .launch_cpu_only(move |ctx| {
            let mine = vec![ctx.rank() as u8 + 1];
            let out = ctx.gather(3, &mine).unwrap();
            if ctx.rank() == 3 {
                *g.lock() = out;
            }
        })
        .unwrap();
    let chunks = gathered.lock().clone().unwrap();
    assert_eq!(chunks, vec![vec![1], vec![2], vec![3], vec![4]]);
}

#[test]
fn broadcast_gpu_root_feeds_everyone() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let map = runtime.rank_map().clone();
    let gpu_root = map.gpu_ranks()[0];
    let cpu_seen = Arc::new(Mutex::new(Vec::new()));
    let cs = Arc::clone(&cpu_seen);
    runtime
        .launch(
            move |ctx| {
                let mut data = Vec::new();
                ctx.broadcast(gpu_root, &mut data).unwrap();
                cs.lock().push(data.len());
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(4 * 1024);
                if ctx.rank(0) == gpu_root {
                    ctx.block().write(buf, &[9u8; 100]);
                    ctx.broadcast(0, gpu_root, buf, 100);
                } else {
                    let got = ctx.broadcast(0, gpu_root, buf, 128);
                    assert_eq!(got, 100);
                }
            },
        )
        .unwrap();
    assert_eq!(cpu_seen.lock().clone(), vec![100, 100]);
}

#[test]
fn repeated_mixed_collectives() {
    // Alternating barriers and broadcasts across several iterations, from
    // both CPU and GPU ranks, to catch cross-round state leaks.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    runtime
        .launch(
            move |ctx| {
                for round in 0..4u8 {
                    ctx.barrier().unwrap();
                    let mut data = if ctx.rank() == 0 { vec![round; 64] } else { Vec::new() };
                    ctx.broadcast(0, &mut data).unwrap();
                    assert_eq!(data, vec![round; 64]);
                }
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(2 * 1024);
                for round in 0..4u8 {
                    ctx.barrier(0);
                    let got = ctx.broadcast(0, 0, buf, 64);
                    assert_eq!(got, 64);
                    assert_eq!(ctx.block().read_vec(buf, 64), vec![round; 64]);
                }
            },
        )
        .unwrap();
}
