//! Cross-crate integration: DCGN collectives spanning CPU ranks and GPU
//! slots on multiple nodes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dcgn::{DcgnConfig, DevicePtr, ReduceOp, Runtime};
use parking_lot::Mutex;

#[test]
fn barrier_over_mixed_ranks_and_nodes() {
    // 2 nodes x (1 CPU + 1 GPU slot): 4 ranks of two kinds.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let counter = Arc::new(AtomicUsize::new(0));
    let (c_cpu, c_gpu) = (Arc::clone(&counter), Arc::clone(&counter));
    runtime
        .launch(
            move |ctx| {
                c_cpu.fetch_add(1, Ordering::SeqCst);
                ctx.barrier().unwrap();
                assert_eq!(c_cpu.load(Ordering::SeqCst), 4);
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                c_gpu.fetch_add(1, Ordering::SeqCst);
                ctx.barrier(0);
                assert_eq!(c_gpu.load(Ordering::SeqCst), 4);
            },
        )
        .unwrap();
}

#[test]
fn broadcast_cpu_root_reaches_gpu_slots() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let payload: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
    let expected_cpu = payload.clone();
    let expected_gpu = payload.clone();
    let seen = Arc::new(AtomicUsize::new(0));
    let (seen_cpu, seen_gpu) = (Arc::clone(&seen), Arc::clone(&seen));
    runtime
        .launch(
            move |ctx| {
                let mut data = if ctx.rank() == 0 {
                    payload.clone()
                } else {
                    Vec::new()
                };
                ctx.broadcast(0, &mut data).unwrap();
                assert_eq!(data, expected_cpu);
                seen_cpu.fetch_add(1, Ordering::SeqCst);
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(8 * 1024);
                let got = ctx.broadcast(0, 0, buf, 512);
                assert_eq!(got, 512);
                assert_eq!(ctx.block().read_vec(buf, 512), expected_gpu);
                seen_gpu.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();
    assert_eq!(seen.load(Ordering::SeqCst), 4);
}

#[test]
fn incomplete_collective_fails_rather_than_hanging() {
    // A gather in which the GPU slots never join must NOT complete: the
    // launch reports an error (the CPU ranks time out / are failed at
    // shutdown) instead of silently succeeding or deadlocking.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    runtime.set_request_timeout(std::time::Duration::from_secs(2));
    let gathered = Arc::new(Mutex::new(None));
    let g = Arc::clone(&gathered);
    let result = runtime.launch(
        move |ctx| {
            let mine = vec![ctx.rank() as u8; 3];
            let out = ctx
                .gather(0, &mine)
                .expect("gather should fail, not succeed");
            if ctx.rank() == 0 {
                *g.lock() = out;
            }
        },
        move |_ctx| {
            // GPU slots intentionally never join the collective.
        },
    );
    assert!(result.is_err());
    assert!(gathered.lock().is_none());
}

#[test]
fn gather_with_cpu_only_ranks_completes() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 2, 0, 0)).unwrap();
    let gathered = Arc::new(Mutex::new(None));
    let g = Arc::clone(&gathered);
    runtime
        .launch_cpu_only(move |ctx| {
            let mine = vec![ctx.rank() as u8 + 1];
            let out = ctx.gather(3, &mine).unwrap();
            if ctx.rank() == 3 {
                *g.lock() = out;
            }
        })
        .unwrap();
    let chunks = gathered.lock().clone().unwrap();
    assert_eq!(chunks, vec![vec![1], vec![2], vec![3], vec![4]]);
}

#[test]
fn broadcast_gpu_root_feeds_everyone() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let map = runtime.rank_map().clone();
    let gpu_root = map.gpu_ranks()[0];
    let cpu_seen = Arc::new(Mutex::new(Vec::new()));
    let cs = Arc::clone(&cpu_seen);
    runtime
        .launch(
            move |ctx| {
                let mut data = Vec::new();
                ctx.broadcast(gpu_root, &mut data).unwrap();
                cs.lock().push(data.len());
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(4 * 1024);
                if ctx.rank(0) == gpu_root {
                    ctx.block().write(buf, &[9u8; 100]);
                    ctx.broadcast(0, gpu_root, buf, 100);
                } else {
                    let got = ctx.broadcast(0, gpu_root, buf, 128);
                    assert_eq!(got, 100);
                }
            },
        )
        .unwrap();
    assert_eq!(cpu_seen.lock().clone(), vec![100, 100]);
}

#[test]
fn allreduce_spans_cpu_and_gpu_ranks() {
    // 2 nodes x (1 CPU + 1 GPU slot): rank r contributes [r+1, 2(r+1)];
    // the sum over ranks 0..4 is [10, 20] and must land everywhere.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let results = Arc::new(Mutex::new(Vec::new()));
    let (r_cpu, r_gpu) = (Arc::clone(&results), Arc::clone(&results));
    runtime
        .launch(
            move |ctx| {
                let mine = vec![(ctx.rank() + 1) as f64, 2.0 * (ctx.rank() + 1) as f64];
                let sum = ctx.allreduce(&mine, ReduceOp::Sum).unwrap();
                r_cpu.lock().push(sum);
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let rank = ctx.rank(0);
                let buf = DevicePtr::NULL.add(1 << 20);
                let mine = [(rank + 1) as f64, 2.0 * (rank + 1) as f64];
                let bytes: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
                ctx.block().write(buf, &bytes);
                let got = ctx.allreduce(0, ReduceOp::Sum, buf, 2);
                assert_eq!(got, 16);
                let back = ctx.block().read_vec(buf, 16);
                let sum: Vec<f64> = back
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                r_gpu.lock().push(sum);
            },
        )
        .unwrap();
    let results = results.lock().clone();
    assert_eq!(results.len(), 4);
    for sum in results {
        assert_eq!(sum, vec![10.0, 20.0]);
    }
}

#[test]
fn scatter_from_gpu_root_reaches_cpu_ranks() {
    // The scatter root is a GPU slot: chunks staged in device memory must
    // come back out to CPU ranks on both nodes.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let map = runtime.rank_map().clone();
    let gpu_root = map.gpu_ranks()[0];
    let runtime_total = map.total_ranks();
    runtime
        .launch(
            move |ctx| {
                let mine = ctx.scatter(gpu_root, None).unwrap();
                assert_eq!(mine, vec![ctx.rank() as u8 * 3 + 1; 4]);
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let rank = ctx.rank(0);
                let buf = DevicePtr::NULL.add(1 << 20);
                if rank == gpu_root {
                    for r in 0..runtime_total {
                        ctx.block().write(buf.add(r * 4), &[r as u8 * 3 + 1; 4]);
                    }
                }
                let got = ctx.scatter(0, gpu_root, buf, 4);
                assert_eq!(got, 4);
                assert_eq!(ctx.block().read_vec(buf, 4), vec![rank as u8 * 3 + 1; 4]);
            },
        )
        .unwrap();
}

#[test]
fn allgather_collects_chunks_from_both_kinds() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let total = runtime.rank_map().total_ranks();
    let seen = Arc::new(AtomicUsize::new(0));
    let (s_cpu, s_gpu) = (Arc::clone(&seen), Arc::clone(&seen));
    runtime
        .launch(
            move |ctx| {
                let chunks = ctx.allgather(&[ctx.rank() as u8 + 10; 3]).unwrap();
                assert_eq!(chunks.len(), total);
                for (r, chunk) in chunks.iter().enumerate() {
                    assert_eq!(chunk, &vec![r as u8 + 10; 3]);
                }
                s_cpu.fetch_add(1, Ordering::SeqCst);
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let rank = ctx.rank(0);
                let buf = DevicePtr::NULL.add(2 << 20);
                ctx.block().write(buf.add(rank * 3), &[rank as u8 + 10; 3]);
                let got = ctx.allgather(0, buf, 3);
                assert_eq!(got, 3 * ctx.size());
                let table = ctx.block().read_vec(buf, 3 * ctx.size());
                for r in 0..ctx.size() {
                    assert_eq!(&table[r * 3..r * 3 + 3], &[r as u8 + 10; 3]);
                }
                s_gpu.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();
    assert_eq!(seen.load(Ordering::SeqCst), 4);
}

#[test]
fn reduce_to_cpu_root_includes_gpu_contributions() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let total = runtime.rank_map().total_ranks();
    let reduced = Arc::new(Mutex::new(None));
    let r = Arc::clone(&reduced);
    runtime
        .launch(
            move |ctx| {
                let mine = vec![(ctx.rank() + 1) as f64];
                let out = ctx.reduce(0, &mine, ReduceOp::Max).unwrap();
                if ctx.rank() == 0 {
                    *r.lock() = out;
                } else {
                    assert!(out.is_none());
                }
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let rank = ctx.rank(0);
                let buf = DevicePtr::NULL.add(3 << 20);
                ctx.block().write(buf, &((rank + 1) as f64).to_le_bytes());
                let got = ctx.reduce(0, 0, ReduceOp::Max, buf, 1);
                assert_eq!(got, 0, "non-root GPU slots receive no reduction");
            },
        )
        .unwrap();
    // Max over ranks 0..total of (rank + 1): the highest rank is a GPU slot,
    // so the result proves GPU contributions flowed into the reduction.
    assert_eq!(reduced.lock().clone(), Some(vec![total as f64]));
}

#[test]
fn mismatched_collectives_error_cleanly() {
    // Rank 0 calls allgather while rank 1 calls allreduce: the comm thread
    // must reject the mismatch rather than deadlocking or crashing.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 2, 0, 0)).unwrap();
    runtime.set_request_timeout(std::time::Duration::from_secs(2));
    let result = runtime.launch_cpu_only(move |ctx| {
        if ctx.rank() == 0 {
            ctx.allgather(&[1, 2, 3]).unwrap();
        } else {
            ctx.allreduce(&[1.0], ReduceOp::Sum).unwrap();
        }
    });
    assert!(result.is_err());
}

#[test]
fn repeated_mixed_collectives() {
    // Alternating barriers and broadcasts across several iterations, from
    // both CPU and GPU ranks, to catch cross-round state leaks.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    runtime
        .launch(
            move |ctx| {
                for round in 0..4u8 {
                    ctx.barrier().unwrap();
                    let mut data = if ctx.rank() == 0 {
                        vec![round; 64]
                    } else {
                        Vec::new()
                    };
                    ctx.broadcast(0, &mut data).unwrap();
                    assert_eq!(data, vec![round; 64]);
                }
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let buf = DevicePtr::NULL.add(2 * 1024);
                for round in 0..4u8 {
                    ctx.barrier(0);
                    let got = ctx.broadcast(0, 0, buf, 64);
                    assert_eq!(got, 64);
                    assert_eq!(ctx.block().read_vec(buf, 64), vec![round; 64]);
                }
            },
        )
        .unwrap();
}

// ---------------------------------------------------------------------------
// Typed collectives: reduce/allreduce over every supported element type.
// ---------------------------------------------------------------------------

/// Round-trip one typed allreduce + rooted reduce over mixed CPU/GPU ranks:
/// 2 nodes x (1 CPU + 1 GPU slot).  Rank r contributes `input(r)`; everyone
/// must observe `expected` (CPU via the generic `_t` API, GPU via the
/// dtype-tagged in-place device API).
fn typed_reduce_roundtrip<T>(op: ReduceOp, input: fn(usize) -> Vec<T>, expected: Vec<T>)
where
    T: dcgn::ReduceElement + std::fmt::Debug + PartialEq,
{
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    let expected_cpu = expected.clone();
    let expected_gpu = expected.clone();
    let checks = Arc::new(AtomicUsize::new(0));
    let (c_cpu, c_gpu) = (Arc::clone(&checks), Arc::clone(&checks));
    runtime
        .launch(
            move |ctx| {
                let mine = input(ctx.rank());
                let all = ctx.allreduce_t(&mine, op).unwrap();
                assert_eq!(all, expected_cpu);
                let rooted = ctx.reduce_t(0, &mine, op).unwrap();
                if ctx.rank() == 0 {
                    assert_eq!(rooted.unwrap(), expected_cpu);
                } else {
                    assert!(rooted.is_none());
                }
                c_cpu.fetch_add(1, Ordering::SeqCst);
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                let rank = ctx.rank(0);
                let mine = input(rank);
                let count = mine.len();
                let dtype = T::DTYPE;
                let buf = DevicePtr::NULL.add(1 << 20);
                ctx.block().write(buf, &T::slice_to_bytes(&mine));
                let got = ctx.allreduce_dtype(0, op, dtype, buf, count);
                assert_eq!(got, count * dtype.element_bytes());
                let back = T::vec_from_bytes(&ctx.block().read_vec(buf, got));
                assert_eq!(back, expected_gpu);
                // Rooted variant: refill and reduce to global rank 0.
                ctx.block().write(buf, &T::slice_to_bytes(&mine));
                let got = ctx.reduce_dtype(0, 0, op, dtype, buf, count);
                assert_eq!(got, 0, "non-root GPU slots receive nothing");
                c_gpu.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();
    assert_eq!(checks.load(Ordering::SeqCst), 4);
}

#[test]
fn typed_allreduce_f64_sum() {
    typed_reduce_roundtrip::<f64>(
        ReduceOp::Sum,
        |r| vec![(r + 1) as f64, 0.5 * (r + 1) as f64],
        vec![10.0, 5.0],
    );
}

#[test]
fn typed_allreduce_f32_max() {
    typed_reduce_roundtrip::<f32>(
        ReduceOp::Max,
        |r| vec![r as f32 - 1.5, -(r as f32)],
        vec![1.5, 0.0],
    );
}

#[test]
fn typed_allreduce_u32_min() {
    typed_reduce_roundtrip::<u32>(
        ReduceOp::Min,
        |r| vec![10 + r as u32, u32::MAX - r as u32],
        vec![10, u32::MAX - 3],
    );
}

#[test]
fn typed_allreduce_i64_sum() {
    typed_reduce_roundtrip::<i64>(
        ReduceOp::Sum,
        // Values beyond f64's 2^53 integer range: an f64-converting
        // implementation would corrupt them.
        |r| vec![(1i64 << 60) + r as i64, -(r as i64)],
        vec![(1i64 << 62) + 6, -6],
    );
}

#[test]
fn typed_reduce_dtype_disagreement_is_a_collective_mismatch() {
    // Two ranks on one node join "allreduce" with the same operator but
    // different element types: the dtype is part of the collective identity,
    // so the late joiner must fail with a mismatch instead of folding
    // mismatched bytes.
    let mut runtime = Runtime::new(DcgnConfig::homogeneous(1, 2, 0, 0)).unwrap();
    // The first joiner's assembly can never complete; let its request time
    // out quickly instead of waiting out the default two minutes.
    runtime.set_request_timeout(std::time::Duration::from_millis(500));
    let errors = Arc::new(AtomicUsize::new(0));
    let e = Arc::clone(&errors);
    let result = runtime.launch_cpu_only(move |ctx| {
        let outcome = if ctx.rank() == 0 {
            ctx.allreduce_t(&[1.0f32, 2.0], ReduceOp::Sum).map(|_| ())
        } else {
            // Same byte length, different dtype.
            ctx.allreduce_t(&[1u32, 2], ReduceOp::Sum).map(|_| ())
        };
        if outcome.is_err() {
            e.fetch_add(1, Ordering::SeqCst);
        }
    });
    // Either the launch reports the failure or the kernels observed it;
    // at least one rank must have failed and nothing may hang.
    let _ = result;
    assert!(errors.load(Ordering::SeqCst) >= 1);
}

#[test]
fn typed_reduce_cross_node_dtype_disagreement_fails_loudly() {
    // Ranks on *different nodes* disagree on the element type (same element
    // size, so no length mismatch could save us): the exchange up-frames
    // carry the collective's full (op, dtype) identity, so the leader must
    // fail with an identity-mismatch error instead of reinterpreting the
    // peer's bytes — and, because world collectives ride the same exchange
    // engine as subgroups, the error is echoed to *every* node: the
    // non-root rank errors too instead of silently finishing.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 0, 0)).unwrap();
    let errors = Arc::new(AtomicUsize::new(0));
    let e = Arc::clone(&errors);
    runtime
        .launch_cpu_only(move |ctx| {
            let outcome = if ctx.rank() == 0 {
                ctx.reduce_t::<f32>(0, &[1.5], ReduceOp::Sum).map(|_| ())
            } else {
                ctx.reduce_t::<u32>(0, &[2], ReduceOp::Sum).map(|_| ())
            };
            match outcome {
                Err(err) => {
                    let msg = err.to_string();
                    assert!(msg.contains("identity mismatch"), "unexpected: {msg}");
                    e.fetch_add(1, Ordering::SeqCst);
                }
                Ok(()) => panic!("dtype disagreement completed on rank {}", ctx.rank()),
            }
        })
        .unwrap();
    assert_eq!(errors.load(Ordering::SeqCst), 2);
}

#[test]
fn subgroup_dtype_disagreement_fails_every_member() {
    // The same disagreement inside a *subgroup* spanning two nodes: the
    // leader detects the identity mismatch when combining up-frames and
    // echoes the error to every participating node — full containment.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 0, 0)).unwrap();
    let errors = Arc::new(AtomicUsize::new(0));
    let e = Arc::clone(&errors);
    runtime
        .launch_cpu_only(move |ctx| {
            let comm = ctx.comm_split(0, 0).unwrap();
            let outcome = if ctx.rank() == 0 {
                ctx.allreduce_t_in::<f32>(&comm, &[1.0], ReduceOp::Sum)
                    .map(|_| ())
            } else {
                ctx.allreduce_t_in::<u32>(&comm, &[1], ReduceOp::Sum)
                    .map(|_| ())
            };
            let err = outcome.expect_err("dtype disagreement must fail");
            assert!(
                err.to_string().contains("identity mismatch"),
                "unexpected: {err}"
            );
            e.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    assert_eq!(errors.load(Ordering::SeqCst), 2);
}
