//! Cross-crate integration: point-to-point traffic between every combination
//! of endpoint kinds (CPU↔CPU, CPU↔GPU, GPU↔GPU) across nodes, exercising the
//! full stack (netsim fabric → rmpi → comm thread → mailbox protocol → dpm).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dcgn::{CostModel, DcgnConfig, DevicePtr, NodeConfig, Runtime};

#[test]
fn cpu_cpu_pingpong_two_nodes() {
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 0, 0)).unwrap();
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    runtime
        .launch_cpu_only(move |ctx| {
            for round in 0..3u8 {
                if ctx.rank() == 0 {
                    ctx.send(1, &[round; 32]).unwrap();
                    let (back, _) = ctx.recv(1).unwrap();
                    assert_eq!(back, vec![round + 100; 32]);
                } else {
                    let (msg, _) = ctx.recv(0).unwrap();
                    assert_eq!(msg, vec![round; 32]);
                    ctx.send(0, &[round + 100; 32]).unwrap();
                }
            }
            h.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 2);
}

#[test]
fn gpu_gpu_pingpong_two_nodes_matches_figure_one() {
    // The exact structure of Figure 1 in the paper: two GPU ranks, slot 0,
    // only "thread 0" (block 0) communicates, payload lives in global memory.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 0, 1, 1)).unwrap();
    let hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&hits);
    runtime
        .launch_gpu_only(move |ctx| {
            const SLOT_INDEX: usize = 0;
            if ctx.block().block_id() != 0 {
                return;
            }
            let gpu_mem = DevicePtr::NULL.add(16 * 1024);
            let gpu_mem_size = 256usize;
            ctx.block()
                .write(gpu_mem, &vec![ctx.rank(SLOT_INDEX) as u8; gpu_mem_size]);
            if ctx.rank(SLOT_INDEX) == 0 {
                ctx.send(SLOT_INDEX, 1, gpu_mem, gpu_mem_size);
                let stat = ctx.recv(SLOT_INDEX, 1, gpu_mem, gpu_mem_size);
                assert_eq!(stat.len, gpu_mem_size);
                assert_eq!(
                    ctx.block().read_vec(gpu_mem, gpu_mem_size),
                    vec![1u8; gpu_mem_size]
                );
            } else if ctx.rank(SLOT_INDEX) == 1 {
                let stat = ctx.recv(SLOT_INDEX, 0, gpu_mem, gpu_mem_size);
                assert_eq!(stat.source, 0);
                // Overwrite with our own pattern and send it back.
                ctx.block().write(gpu_mem, &vec![1u8; gpu_mem_size]);
                ctx.send(SLOT_INDEX, 0, gpu_mem, gpu_mem_size);
            }
            ctx.block().syncthreads();
            h.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 2);
}

#[test]
fn mixed_cpu_gpu_traffic_all_four_directions() {
    // One node with 1 CPU rank + 1 GPU slot, another node the same: exercise
    // CPU→GPU, GPU→CPU, CPU→CPU and GPU→GPU in one job.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 1, 1)).unwrap();
    // Ranks: node0 = {0: CPU, 1: GPU}, node1 = {2: CPU, 3: GPU}.
    runtime
        .launch(
            move |ctx| match ctx.rank() {
                0 => {
                    // CPU→CPU (remote), CPU→GPU (remote).
                    ctx.send(2, b"cpu to cpu").unwrap();
                    ctx.send(3, b"cpu to gpu").unwrap();
                    let (from_gpu, s) = ctx.recv(1).unwrap();
                    assert_eq!(from_gpu, b"gpu to cpu");
                    assert_eq!(s.source, 1);
                }
                2 => {
                    let (msg, _) = ctx.recv(0).unwrap();
                    assert_eq!(msg, b"cpu to cpu");
                }
                _ => unreachable!("only ranks 0 and 2 are CPU ranks"),
            },
            move |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                const SLOT: usize = 0;
                let scratch = DevicePtr::NULL.add(8 * 1024);
                match ctx.rank(SLOT) {
                    1 => {
                        // GPU→CPU (local node) and GPU→GPU (remote).
                        ctx.block().write(scratch, b"gpu to cpu");
                        ctx.send(SLOT, 0, scratch, 10);
                        ctx.block().write(scratch, b"gpu to gpu");
                        ctx.send(SLOT, 3, scratch, 10);
                    }
                    3 => {
                        let s = ctx.recv(SLOT, 0, scratch, 64);
                        assert_eq!(ctx.block().read_vec(scratch, s.len), b"cpu to gpu");
                        let s = ctx.recv(SLOT, 1, scratch, 64);
                        assert_eq!(ctx.block().read_vec(scratch, s.len), b"gpu to gpu");
                    }
                    other => panic!("unexpected gpu rank {other}"),
                }
            },
        )
        .unwrap();
}

#[test]
fn pingpong_with_realistic_costs_still_correct() {
    // Functional correctness is independent of the injected hardware costs.
    let cfg = DcgnConfig::homogeneous(2, 0, 1, 1).with_cost(CostModel::g92_scaled(25.0));
    let runtime = Runtime::new(cfg).unwrap();
    runtime
        .launch_gpu_only(move |ctx| {
            const SLOT: usize = 0;
            if ctx.block().block_id() != 0 {
                return;
            }
            let buf = DevicePtr::NULL.add(4 * 1024);
            if ctx.rank(SLOT) == 0 {
                ctx.block().write(buf, &[7u8; 128]);
                ctx.send(SLOT, 1, buf, 128);
            } else {
                let s = ctx.recv(SLOT, 0, buf, 128);
                assert_eq!(s.len, 128);
                assert_eq!(ctx.block().read_vec(buf, 128), vec![7u8; 128]);
            }
        })
        .unwrap();
}

#[test]
fn sendrecv_replace_ring_of_gpu_ranks() {
    // Four GPU ranks over two nodes rotate a token simultaneously — the
    // communication core of Cannon's algorithm.
    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 0, 1, 2)).unwrap();
    let checks = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&checks);
    runtime
        .launch_gpu_only(move |ctx| {
            let slot = ctx.slot_for_block();
            if ctx.block().block_id() >= ctx.slots() {
                return;
            }
            let me = ctx.rank(slot);
            let n = ctx.size();
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let buf = DevicePtr::NULL.add(32 * 1024 + slot * 1024);
            ctx.block().write(buf, &[me as u8; 16]);
            let s = ctx.sendrecv_replace(slot, next, prev, buf, 16);
            assert_eq!(s.source, prev);
            assert_eq!(ctx.block().read_vec(buf, 16), vec![prev as u8; 16]);
            c.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    assert_eq!(checks.load(Ordering::SeqCst), 4);
}

#[test]
fn heterogeneous_node_shapes_interoperate() {
    // A deliberately lopsided job: node 0 has 2 CPU ranks, node 1 has one GPU
    // with 2 slots, node 2 has 1 CPU + 1 GPU slot.
    let cfg = DcgnConfig::heterogeneous(vec![
        NodeConfig::new(2, 0, 0),
        NodeConfig::new(0, 1, 2),
        NodeConfig::new(1, 1, 1),
    ]);
    let runtime = Runtime::new(cfg).unwrap();
    assert_eq!(runtime.rank_map().total_ranks(), 6);
    let sum = Arc::new(AtomicUsize::new(0));
    let (s_cpu, s_gpu) = (Arc::clone(&sum), Arc::clone(&sum));
    runtime
        .launch(
            move |ctx| {
                // Every CPU rank sends its rank to rank 0; rank 0 sums.
                if ctx.rank() == 0 {
                    let mut total = 0;
                    for _ in 0..ctx.size() - 1 {
                        let (msg, _) = ctx.recv_any().unwrap();
                        total += msg[0] as usize;
                    }
                    s_cpu.fetch_add(total, Ordering::SeqCst);
                } else {
                    ctx.send(0, &[ctx.rank() as u8]).unwrap();
                }
            },
            move |ctx| {
                let slot = ctx.slot_for_block();
                if ctx.block().block_id() >= ctx.slots() {
                    return;
                }
                let buf = DevicePtr::NULL.add(16 * 1024 + slot * 256);
                ctx.block().write(buf, &[ctx.rank(slot) as u8]);
                ctx.send(slot, 0, buf, 1);
                let _ = &s_gpu;
            },
        )
        .unwrap();
    assert_eq!(sum.load(Ordering::SeqCst), (1..6).sum::<usize>());
}
