//! End-to-end application correctness across the full stack, at sizes small
//! enough for CI: Mandelbrot, Cannon and N-body in both the DCGN and the
//! GAS+MPI variants, verified against sequential references.

use dcgn::CostModel;
use dcgn_apps::cannon;
use dcgn_apps::mandelbrot::{self, MandelbrotParams};
use dcgn_apps::nbody;

fn small_mandelbrot() -> MandelbrotParams {
    MandelbrotParams {
        width: 48,
        height: 48,
        max_iter: 96,
        strip_rows: 8,
        ..MandelbrotParams::default()
    }
}

#[test]
fn mandelbrot_dcgn_and_gas_agree_with_reference() {
    let p = small_mandelbrot();
    let reference = mandelbrot::render_reference(&p);
    let dcgn_run = mandelbrot::run_dcgn_gpu(p, 2, 1, 1, CostModel::zero()).unwrap();
    let gas_run = mandelbrot::run_gas(p, 2, 2, CostModel::zero());
    assert_eq!(dcgn_run.image, reference);
    assert_eq!(gas_run.image, reference);
    // Every strip was attributed to a worker.
    assert!(dcgn_run.strip_owner.iter().all(|&o| o != usize::MAX));
}

#[test]
fn mandelbrot_multiple_slots_per_gpu() {
    let p = small_mandelbrot();
    let reference = mandelbrot::render_reference(&p);
    let run = mandelbrot::run_dcgn_gpu(p, 1, 1, 3, CostModel::zero()).unwrap();
    assert_eq!(run.image, reference);
    assert_eq!(run.workers, 3);
}

#[test]
fn cannon_dcgn_and_gas_match_reference_product() {
    let dcgn_run = cannon::run_dcgn_gpu(24, 4, 2, CostModel::zero()).unwrap();
    assert!(dcgn_run.max_error() < 1e-4);
    let gas_run = cannon::run_gas(24, 4, 2, CostModel::zero());
    assert!(gas_run.max_error() < 1e-4);
}

#[test]
fn cannon_three_by_three_grid() {
    let run = cannon::run_dcgn_gpu(18, 9, 3, CostModel::zero()).unwrap();
    assert!(run.max_error() < 1e-4);
    assert_eq!(run.workers, 9);
}

#[test]
fn nbody_dcgn_and_gas_match_reference_trajectories() {
    let steps = 2;
    let dcgn_run = nbody::run_dcgn_gpu(64, 4, 2, steps, CostModel::zero()).unwrap();
    assert!(dcgn_run.max_position_error(steps) < 1e-4);
    let gas_run = nbody::run_gas(64, 4, 2, steps, CostModel::zero());
    assert!(gas_run.max_position_error(steps) < 1e-4);
}

#[test]
fn apps_run_under_the_paper_cost_model() {
    // Same correctness with realistic (scaled) hardware costs injected.
    let cost = CostModel::g92_scaled(50.0);
    let p = small_mandelbrot();
    let run = mandelbrot::run_dcgn_gpu(p, 2, 1, 1, cost).unwrap();
    assert_eq!(run.image, mandelbrot::render_reference(&p));
    let run = cannon::run_dcgn_gpu(16, 4, 2, cost).unwrap();
    assert!(run.max_error() < 1e-4);
    let run = nbody::run_dcgn_gpu(48, 2, 2, 1, cost).unwrap();
    assert!(run.max_position_error(1) < 1e-4);
}
