//! Pool accounting across the full receive path.
//!
//! The pooled [`dcgn::Payload`] is threaded from kernel staging through the
//! comm thread's wire framing, the `dcgn_rmpi` substrate's eager/rendezvous
//! packets and the `dcgn_netsim` fabric, back up to delivery: one message
//! acquires exactly **one** pooled buffer (the send-side staging), and the
//! receive side only ever re-slices it.  This test lives in its own file —
//! its own test process — because the slab pool's counters are global and
//! concurrently running tests would pollute them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dcgn::buffer::pool_stats;
use dcgn::{DcgnConfig, Runtime};

/// Total pooled-buffer acquisitions so far (fresh allocations + slab
/// reuses).  Recycling does not count: returning a buffer is not a copy.
fn acquisitions() -> u64 {
    let stats = pool_stats();
    stats.allocated + stats.reused
}

#[test]
fn cross_node_message_acquires_exactly_one_pooled_buffer() {
    const ROUNDS: u64 = 8;
    const SIZE: usize = 100 * 1024;

    let runtime = Runtime::new(DcgnConfig::homogeneous(2, 1, 0, 0)).unwrap();
    let measured = Arc::new(AtomicU64::new(u64::MAX));
    let m = Arc::clone(&measured);
    runtime
        .launch_cpu_only(move |ctx| {
            // Quiesce both ranks, snapshot, run the traffic, re-quiesce,
            // snapshot again.  Collective exchange frames adopt their
            // existing allocations (`Payload::from_vec`), so the barriers
            // cost zero acquisitions and the delta isolates the sends.
            ctx.barrier().unwrap();
            let before = acquisitions();
            if ctx.rank() == 0 {
                for round in 0..ROUNDS {
                    ctx.send(1, &vec![round as u8; SIZE]).unwrap();
                }
            } else {
                for round in 0..ROUNDS {
                    let (data, status) = ctx.recv(0).unwrap();
                    assert_eq!(status.len, SIZE);
                    assert_eq!(data, vec![round as u8; SIZE]);
                }
            }
            ctx.barrier().unwrap();
            if ctx.rank() == 0 {
                m.store(acquisitions() - before, Ordering::SeqCst);
            }
            ctx.barrier().unwrap();
        })
        .unwrap();

    // One acquisition per message: the sender's staging buffer (built with
    // wire headroom).  Framing reuses it in place, the fabric moves it, the
    // substrate hands it back out as the received frame, and the delivered
    // body is a slice of it.  A recv-side `Vec<u8>` copy-out would show up
    // here as a second acquisition (or a pool-bypassing allocation caught
    // by the pointer-identity tests in `dcgn_rmpi`).
    //
    // Exception: when the suite runs with a DCGN_RDV_CHUNK small enough to
    // stream these sends, the receiver legitimately acquires one assembly
    // buffer per message (chunks are still zero-copy views of the staging
    // buffer), so the budget is two acquisitions per message.
    let streamed = std::env::var("DCGN_RDV_CHUNK")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .is_some_and(|chunk| chunk > 0 && chunk < SIZE);
    let per_message = if streamed { 2 } else { 1 };
    assert_eq!(
        measured.load(Ordering::SeqCst),
        ROUNDS * per_message,
        "the receive path must not acquire pooled buffers beyond the \
         streamed-rendezvous assembly buffer"
    );
}
