//! Brute-force N-body with per-step broadcasts (the paper's one-to-all
//! experiment): DCGN GPU ranks vs. the GAS+MPI baseline, at several problem
//! sizes to show how efficiency grows with computation per byte communicated.
//!
//! Run with `cargo run -p dcgn-apps --example nbody --release`.

use dcgn::CostModel;
use dcgn_apps::nbody::{run_dcgn_gpu, run_gas};

fn main() {
    let steps = 2;
    let workers = 4;
    let nodes = 2;
    let cost = CostModel::fast();

    println!("N-body, {workers} GPU ranks over {nodes} nodes, {steps} steps");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>8}",
        "bodies", "DCGN (ms)", "GAS (ms)", "ratio"
    );
    for n in [256usize, 1024, 2048] {
        let dcgn = run_dcgn_gpu(n, workers, nodes, steps, cost).expect("dcgn nbody");
        let gas = run_gas(n, workers, nodes, steps, cost);
        assert!(dcgn.max_position_error(steps) < 1e-3);
        println!(
            "{:>8}  {:>12.1}  {:>12.1}  {:>8.2}",
            n,
            dcgn.elapsed.as_secs_f64() * 1e3,
            gas.elapsed.as_secs_f64() * 1e3,
            dcgn.elapsed.as_secs_f64() / gas.elapsed.as_secs_f64()
        );
    }
    println!("(larger problems amortise the broadcast cost: the ratio approaches 1.0)");
}
