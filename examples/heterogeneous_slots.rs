//! Demonstrates rank virtualisation with slots (§3.1 of the paper): the same
//! GPU participates as one or as four communication targets, and the
//! heterogeneous-workload Mandelbrot master/worker job benefits from the
//! finer granularity because a slow strip no longer stalls the whole device.
//!
//! Run with `cargo run -p dcgn-apps --example heterogeneous_slots --release`.

use dcgn::{CostModel, DcgnConfig, NodeConfig, Runtime};
use dcgn_apps::mandelbrot::{run_dcgn_gpu, MandelbrotParams};

fn main() {
    // Part 1: show the rank map for 1 vs 4 slots per GPU.
    for slots in [1usize, 4] {
        let cfg = DcgnConfig::heterogeneous(vec![NodeConfig::new(1, 2, slots)]);
        let rt = Runtime::new(cfg).expect("config");
        let map = rt.rank_map();
        println!(
            "slots_per_gpu = {slots}: {} DCGN ranks ({} CPU, {} GPU slots)",
            map.total_ranks(),
            map.cpu_ranks().len(),
            map.gpu_ranks().len()
        );
        for rank in 0..map.total_ranks() {
            println!("  rank {rank}: {:?}", map.kind_of(rank).unwrap());
        }
    }

    // Part 2: a workload with highly non-uniform strip costs (a deep zoom
    // makes some strips far more expensive than others).  More slots per GPU
    // mean more outstanding strips per device and better load balance.
    let params = MandelbrotParams {
        width: 96,
        height: 96,
        max_iter: 2048,
        strip_rows: 8,
        ..MandelbrotParams::default()
    };
    let cost = CostModel::fast();
    println!();
    println!("heterogeneous Mandelbrot (max_iter = {}):", params.max_iter);
    for slots in [1usize, 2, 4] {
        let run = run_dcgn_gpu(params, 2, 1, slots, cost).expect("run");
        println!(
            "  {slots} slot(s)/GPU ({} workers): {:8.1} ms, {:.2} Mpixels/s",
            run.workers,
            run.elapsed.as_secs_f64() * 1e3,
            run.pixels_per_sec / 1e6
        );
    }
    println!("(the paper's map-reduce example in §3.1 motivates exactly this trade-off)");
}
