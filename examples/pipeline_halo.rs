//! Pipeline halo exchange: a 1-D Jacobi diffusion stencil whose halo
//! traffic is hidden behind interior compute with the nonblocking
//! point-to-point API — the irecv-ahead/isend-behind pattern.
//!
//! The domain is strip-decomposed over the CPU ranks.  Each time step a
//! rank:
//!
//! 1. posts `irecv`s for both incoming halo cells *ahead* of everything,
//! 2. `isend`s its own edge cells *behind* them,
//! 3. relaxes its interior cells while the halos fly,
//! 4. `wait`s the halos and relaxes the two edge cells last.
//!
//! The same simulation also runs with blocking `sendrecv`-style halo
//! exchange; both must agree with a sequential reference, and the printed
//! timings show how much of the wire latency the overlap hides.
//!
//! Run with `cargo run --example pipeline_halo --release`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dcgn::{CostModel, DcgnConfig, Runtime};
use parking_lot::Mutex;

const NODES: usize = 4;
const RANKS_PER_NODE: usize = 2;
const CELLS_PER_RANK: usize = 64;
const STEPS: usize = 40;
/// Synthetic per-step interior compute (models a heavier stencil), the
/// window the halo flight time can hide inside.
const INTERIOR_COMPUTE: Duration = Duration::from_micros(300);

/// Tag of halo cells moving toward higher ranks / lower ranks.
const TAG_RIGHTWARD: u32 = 0;
const TAG_LEFTWARD: u32 = 1;

fn initial_strip(rank: usize) -> Vec<f64> {
    (0..CELLS_PER_RANK)
        .map(|i| ((rank * CELLS_PER_RANK + i) as f64 * 0.37).sin())
        .collect()
}

/// One Jacobi relaxation of `cells[i]` given its neighbours.
fn relax(left: f64, mid: f64, right: f64) -> f64 {
    0.5 * mid + 0.25 * (left + right)
}

/// Sequential reference over the whole domain (fixed boundaries).
fn reference(total_ranks: usize) -> Vec<f64> {
    let mut domain: Vec<f64> = (0..total_ranks).flat_map(initial_strip).collect();
    for _ in 0..STEPS {
        let prev = domain.clone();
        for i in 1..domain.len() - 1 {
            domain[i] = relax(prev[i - 1], prev[i], prev[i + 1]);
        }
    }
    domain
}

fn encode(v: f64) -> [u8; 8] {
    v.to_le_bytes()
}

fn decode(bytes: &[u8]) -> f64 {
    f64::from_le_bytes(bytes.try_into().expect("8-byte halo"))
}

/// Distributed simulation; returns rank-0-gathered cells and the wall time
/// of the stepping loop (max over ranks).
fn run_distributed(nonblocking: bool) -> (Vec<f64>, Duration) {
    let config =
        DcgnConfig::homogeneous(NODES, RANKS_PER_NODE, 0, 0).with_cost(CostModel::g92_scaled(20.0));
    let runtime = Runtime::new(config).expect("halo config");
    let total = runtime.rank_map().total_ranks();
    let slowest: Arc<Mutex<Duration>> = Arc::new(Mutex::new(Duration::ZERO));
    let gathered: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let (s, g) = (Arc::clone(&slowest), Arc::clone(&gathered));

    runtime
        .launch_cpu_only(move |ctx| {
            let me = ctx.rank();
            let left = me.checked_sub(1);
            let right = (me + 1 < total).then_some(me + 1);
            let mut cells = initial_strip(me);
            ctx.barrier().unwrap();
            let start = Instant::now();

            for _ in 0..STEPS {
                let last = cells.len() - 1;
                if nonblocking {
                    // (1) irecv-ahead: post both halo receives first.
                    let recv_left = left.map(|l| ctx.irecv_tagged(Some(l), TAG_RIGHTWARD).unwrap());
                    let recv_right =
                        right.map(|r| ctx.irecv_tagged(Some(r), TAG_LEFTWARD).unwrap());
                    // (2) isend-behind: ship our edge cells.
                    let send_right = right.map(|r| {
                        ctx.isend_tagged(r, TAG_RIGHTWARD, &encode(cells[last]))
                            .unwrap()
                    });
                    let send_left = left.map(|l| {
                        ctx.isend_tagged(l, TAG_LEFTWARD, &encode(cells[0]))
                            .unwrap()
                    });
                    // (3) interior compute overlaps the halo flight.
                    let prev = cells.clone();
                    for i in 1..last {
                        cells[i] = relax(prev[i - 1], prev[i], prev[i + 1]);
                    }
                    dcgn_busy(INTERIOR_COMPUTE);
                    // (4) halos land; relax the edges.
                    let halo_left =
                        recv_left.map(|h| decode(&ctx.wait(h).unwrap().into_recv().unwrap().0));
                    let halo_right =
                        recv_right.map(|h| decode(&ctx.wait(h).unwrap().into_recv().unwrap().0));
                    if let Some(hl) = halo_left {
                        cells[0] = relax(hl, prev[0], prev[1]);
                    }
                    if let Some(hr) = halo_right {
                        cells[last] = relax(prev[last - 1], prev[last], hr);
                    }
                    for h in [send_left, send_right].into_iter().flatten() {
                        ctx.wait(h).unwrap();
                    }
                } else {
                    // Blocking shape: the halo exchange completes before any
                    // compute starts, so flight time and compute serialise.
                    let send_right = right.map(|r| {
                        ctx.isend_tagged(r, TAG_RIGHTWARD, &encode(cells[last]))
                            .unwrap()
                    });
                    let send_left = left.map(|l| {
                        ctx.isend_tagged(l, TAG_LEFTWARD, &encode(cells[0]))
                            .unwrap()
                    });
                    let halo_left =
                        left.map(|l| decode(&ctx.recv_tagged(Some(l), TAG_RIGHTWARD).unwrap().0));
                    let halo_right =
                        right.map(|r| decode(&ctx.recv_tagged(Some(r), TAG_LEFTWARD).unwrap().0));
                    for h in [send_left, send_right].into_iter().flatten() {
                        ctx.wait(h).unwrap();
                    }
                    let prev = cells.clone();
                    for i in 1..last {
                        cells[i] = relax(prev[i - 1], prev[i], prev[i + 1]);
                    }
                    dcgn_busy(INTERIOR_COMPUTE);
                    if let Some(hl) = halo_left {
                        cells[0] = relax(hl, prev[0], prev[1]);
                    }
                    if let Some(hr) = halo_right {
                        cells[last] = relax(prev[last - 1], prev[last], hr);
                    }
                }
            }

            let elapsed = start.elapsed();
            {
                let mut slowest = s.lock();
                if elapsed > *slowest {
                    *slowest = elapsed;
                }
            }
            // Gather the final strips at rank 0 for verification.
            let bytes: Vec<u8> = cells.iter().flat_map(|v| v.to_le_bytes()).collect();
            if let Some(strips) = ctx.gather(0, &bytes).unwrap() {
                let mut domain = Vec::with_capacity(total * CELLS_PER_RANK);
                for strip in strips {
                    domain.extend(strip.chunks_exact(8).map(decode));
                }
                *g.lock() = domain;
            }
        })
        .expect("halo launch");

    let domain = gathered.lock().clone();
    let elapsed = *slowest.lock();
    (domain, elapsed)
}

/// Synthetic compute load standing in for a heavier stencil body (a sleep,
/// so single-core hosts can genuinely overlap it with the comm threads —
/// like compute offloaded to an accelerator).
fn dcgn_busy(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

fn main() {
    let total = NODES * RANKS_PER_NODE;
    println!(
        "pipeline_halo: {} cells over {total} ranks on {NODES} nodes, {STEPS} steps",
        total * CELLS_PER_RANK
    );

    let want = reference(total);
    let check = |label: &str, domain: &[f64]| {
        let max_err = domain
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-12, "{label} diverged: max error {max_err}");
        println!("  {label:11} matches the sequential reference (max err {max_err:.2e})");
    };

    let (domain, blocking) = run_distributed(false);
    check("blocking", &domain);
    let (domain, overlapped) = run_distributed(true);
    check("nonblocking", &domain);

    println!("  blocking halo exchange : {blocking:?}");
    println!("  irecv-ahead/isend-behind: {overlapped:?}");
    if overlapped < blocking {
        let saved = blocking - overlapped;
        println!(
            "  overlap hid {saved:?} of wire latency ({:.0}% faster)",
            100.0 * saved.as_secs_f64() / blocking.as_secs_f64()
        );
    } else {
        println!("  (no win this run — flight time below compute on this host)");
    }
}
