//! Mandelbrot with a dynamic work queue (Figure 5 of the paper): GPU slot
//! ranks pull image strips from a CPU master and render them on the device.
//!
//! Run with `cargo run -p dcgn-apps --example mandelbrot --release`.
//! Prints an ASCII rendering plus the strip-ownership map for two runs with
//! identical parameters, showing the nondeterministic work distribution.

use dcgn::CostModel;
use dcgn_apps::mandelbrot::{run_dcgn_gpu, MandelbrotParams};

fn ascii_render(image: &[u32], width: usize, height: usize, max_iter: u32) {
    let ramp = b" .:-=+*#%@";
    for row in (0..height).step_by((height / 24).max(1)) {
        let mut line = String::new();
        for col in (0..width).step_by((width / 64).max(1)) {
            let v = image[row * width + col];
            let idx = if v >= max_iter {
                ramp.len() - 1
            } else {
                (v as usize * (ramp.len() - 1)) / max_iter as usize
            };
            line.push(ramp[idx] as char);
        }
        println!("{line}");
    }
}

fn main() {
    let params = MandelbrotParams {
        width: 128,
        height: 96,
        max_iter: 192,
        strip_rows: 8,
        ..MandelbrotParams::default()
    };
    // Four nodes with two single-slot GPUs each: eight worker ranks, like the
    // paper's testbed, plus a CPU master.
    let cost = CostModel::fast();
    println!(
        "rendering {}x{} with 8 GPU worker ranks (dynamic strip queue)...",
        params.width, params.height
    );
    let run1 = run_dcgn_gpu(params, 4, 2, 1, cost).expect("first run");
    let run2 = run_dcgn_gpu(params, 4, 2, 1, cost).expect("second run");

    ascii_render(&run1.image, params.width, params.height, params.max_iter);
    println!();
    println!(
        "run 1: {:.1} ms, {:.2} Mpixels/s",
        run1.elapsed.as_secs_f64() * 1e3,
        run1.pixels_per_sec / 1e6
    );
    println!(
        "run 2: {:.1} ms, {:.2} Mpixels/s",
        run2.elapsed.as_secs_f64() * 1e3,
        run2.pixels_per_sec / 1e6
    );
    println!();
    println!("strip ownership (rank that rendered each strip), two identical runs:");
    println!("run 1: {:?}", run1.strip_owner);
    println!("run 2: {:?}", run2.strip_owner);
    if run1.strip_owner != run2.strip_owner {
        println!("-> the dynamic work queue produced a different distribution (Figure 5)");
    } else {
        println!("-> identical this time; re-run to observe the variation of Figure 5");
    }
}
