//! Cannon's matrix multiplication with DCGN and with the GAS+MPI baseline
//! (the paper's "simultaneous communication" experiment, §5.1).
//!
//! Run with `cargo run -p dcgn-apps --example cannon_matmul --release`.

use dcgn::CostModel;
use dcgn_apps::cannon::{run_dcgn_gpu, run_gas};

fn main() {
    let n = 128; // matrix dimension (paper: 1024; scaled for the example)
    let p = 4; // 2x2 grid of GPU slot workers
    let nodes = 2;
    let cost = CostModel::fast();

    println!("Cannon {n}x{n} on a 2x2 grid of GPU ranks ({nodes} nodes)");
    let dcgn = run_dcgn_gpu(n, p, nodes, cost).expect("dcgn cannon");
    println!(
        "  DCGN    : {:8.1} ms   max error vs reference {:.2e}",
        dcgn.elapsed.as_secs_f64() * 1e3,
        dcgn.max_error()
    );
    let gas = run_gas(n, p, nodes, cost);
    println!(
        "  GAS+MPI : {:8.1} ms   max error vs reference {:.2e}",
        gas.elapsed.as_secs_f64() * 1e3,
        gas.max_error()
    );
    let ratio = dcgn.elapsed.as_secs_f64() / gas.elapsed.as_secs_f64();
    println!(
        "  DCGN / GAS time ratio = {ratio:.2} (the paper reports DCGN within a few percent of GAS)"
    );
}
