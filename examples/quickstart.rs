//! Quickstart: a CPU↔GPU ping-pong on a two-node DCGN job.
//!
//! Run with `cargo run -p dcgn-apps --example quickstart --release`.

use dcgn::{CostModel, DcgnConfig, DevicePtr, NodeConfig, Runtime};

fn main() {
    // Two nodes: node 0 contributes one CPU-kernel thread (rank 0), node 1
    // contributes one GPU with a single slot (rank 1).  The cost model uses
    // the paper-like G92/Infiniband parameters so the printed timings are in
    // a realistic regime.
    let config =
        DcgnConfig::heterogeneous(vec![NodeConfig::new(1, 0, 0), NodeConfig::new(0, 1, 1)])
            .with_cost(CostModel::g92_cluster());

    let runtime = Runtime::new(config).expect("valid configuration");
    println!(
        "launching {} DCGN ranks over {} nodes",
        runtime.rank_map().total_ranks(),
        runtime.config().num_nodes()
    );

    let report = runtime
        .launch(
            // CPU kernel: runs once per CPU rank.
            |ctx| {
                if ctx.rank() == 0 {
                    println!("[cpu rank 0] sending ping to the GPU rank");
                    ctx.send(1, b"ping from the host").unwrap();
                    let (reply, status) = ctx.recv(1).unwrap();
                    println!(
                        "[cpu rank 0] got {:?} ({} bytes) back from rank {}",
                        String::from_utf8_lossy(&reply),
                        status.len,
                        status.source
                    );
                }
            },
            // GPU kernel: runs once per device block (one block per slot).
            |ctx| {
                if ctx.block().block_id() != 0 {
                    return;
                }
                const SLOT: usize = 0;
                let scratch = DevicePtr::NULL.add(8 * 1024);
                let status = ctx.recv(SLOT, 0, scratch, 64);
                let msg = ctx.block().read_vec(scratch, status.len);
                println!(
                    "[gpu rank {}] received {:?} in device memory",
                    ctx.rank(SLOT),
                    String::from_utf8_lossy(&msg)
                );
                ctx.block().write(scratch, b"pong from the device");
                ctx.send(SLOT, 0, scratch, 20);
            },
        )
        .expect("launch succeeded");

    println!(
        "done in {:.2} ms ({} GPU polling sweeps)",
        report.elapsed.as_secs_f64() * 1e3,
        report.gpu_poll_stats.iter().map(|s| s.polls).sum::<u64>()
    );
}
